"""Physical→DDR address mapping schemes, including the paper's primitive.

The memory controller converts CPU physical addresses into DDR logical
coordinates according to a fixed mapping chosen at boot (§2.1).  Four
schemes are modelled, matching the design space of §4.1:

``LinearMapping``
    Interleaving disabled: a page's cache lines fill consecutive columns
    of one row in one bank.  Enables bank-aware allocation (PALLOC-style
    isolation) but forfeits bank-level parallelism — the >18% performance
    cost the paper cites as making this option unacceptable in production.

``CachelineInterleaving``
    Conventional interleaving: consecutive cache lines round-robin across
    every bank.  Maximum parallelism, but lines from different pages —
    hence different trust domains — share banks and even rows, which is
    precisely why bank-aware isolation breaks under interleaving.

``PermutationInterleaving``
    Interleaving with the bank index XOR-permuted by row bits (Zhang et
    al., MICRO '00 [63]) to cut row-buffer conflicts between interleaved
    streams.  Security-equivalent to ``CachelineInterleaving``: domains
    still mix.

``SubarrayIsolatedInterleaving``  — **the paper's isolation primitive**
    Lines of one page still interleave across all banks (keeping the
    parallelism), but every line of the page lands in the page's domain's
    *subarray group*: the same subarray index in each bank.  Subarrays are
    electromagnetically isolated, so no cross-domain aggressor-victim
    pairs exist (§4.1, Fig. 2).  The host OS declares each frame's domain
    (directly via ASID or indirectly via its knowledge of the map); the
    controller enforces the group placement.

All mappings are bijections between cache-line indices and DDR addresses,
verified by property tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.dram.geometry import DdrAddress, DramGeometry


class AddressMapper:
    """Base class: an invertible map line-index ↔ :class:`DdrAddress`."""

    #: human-readable scheme name used in experiment tables
    name: str = "base"
    #: whether consecutive lines of one page spread across banks
    interleaves: bool = False
    #: whether the scheme can confine a trust domain's pages
    isolates_domains: bool = False

    #: bound on the per-mapper ``line_to_ddr`` memo (entries)
    CACHE_CAPACITY = 1 << 16

    def __init__(self, geometry: DramGeometry, page_bytes: int = 4096) -> None:
        if page_bytes % geometry.cacheline_bytes != 0:
            raise ValueError("page size must be a multiple of the cache-line size")
        self.geometry = geometry
        self.page_bytes = page_bytes
        self.lines_per_page = page_bytes // geometry.cacheline_bytes
        self.total_lines = geometry.cachelines_total
        self.total_frames = self.total_lines // self.lines_per_page
        self._ddr_cache: Dict[int, DdrAddress] = {}
        #: memo telemetry, exported as ``cache.addrmap.*`` gauges
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        # Flat-bank-index -> (channel, rank, bank) lookup table shared by
        # the bulk translators (replaces per-line bank_from_index divmods).
        self._bank_coords: List[tuple] = [
            geometry.bank_from_index(i) for i in range(geometry.banks_total)
        ]

    # -- abstract -------------------------------------------------------

    def _line_to_ddr_uncached(self, line: int) -> DdrAddress:
        raise NotImplementedError

    def ddr_to_line(self, address: DdrAddress) -> int:
        raise NotImplementedError

    # -- the memoised hot path -------------------------------------------

    def line_to_ddr(self, line: int) -> DdrAddress:
        """Map one cache-line index; results are memoised per mapper in a
        bounded insertion-order cache (a mapping is fixed once
        established, so entries only need invalidation on explicit
        remapping events such as
        :meth:`SubarrayIsolatedInterleaving.release_frame`).  The hit
        path is a single ``dict.get`` — eviction order is irrelevant for
        a pure memo, so no LRU reordering work is done per hit."""
        address = self._ddr_cache.get(line)
        if address is not None:
            self.memo_hits += 1
            return address
        self.memo_misses += 1
        address = self._line_to_ddr_uncached(line)
        cache = self._ddr_cache
        if len(cache) >= self.CACHE_CAPACITY:
            del cache[next(iter(cache))]
            self.memo_evictions += 1
        cache[line] = address
        return address

    def lines_to_ddr_bulk(self, lines: Iterable[int]) -> List[DdrAddress]:
        """Translate a batch of cache-line indices, in order.

        The base implementation loops the memoised scalar path;
        subclasses override it with table-driven direct computation
        (precomputed shift/mask or divmod pipelines over the
        ``_bank_coords`` table) that skips the per-line memo entirely.
        Every override must preserve per-line *order* — lazy first-touch
        placement in :class:`SubarrayIsolatedInterleaving` depends on it.
        """
        to_ddr = self.line_to_ddr
        return [to_ddr(line) for line in lines]

    def memo_counters(self) -> Dict[str, int]:
        """Telemetry snapshot of the ``line_to_ddr`` memo (gauge source
        for the ``cache.addrmap.*`` registry prefix)."""
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
            "entries": len(self._ddr_cache),
        }

    def _invalidate_lines(self, lines) -> None:
        """Drop memoised entries (used when part of the map changes)."""
        cache = self._ddr_cache
        for line in lines:
            cache.pop(line, None)

    # -- shared helpers ---------------------------------------------------

    def physical_to_ddr(self, physical: int) -> DdrAddress:
        """Map a byte-granularity CPU physical address."""
        return self.line_to_ddr(physical // self.geometry.cacheline_bytes)

    def frame_of_line(self, line: int) -> int:
        return line // self.lines_per_page

    def lines_of_frame(self, frame: int) -> range:
        self._check_frame(frame)
        start = frame * self.lines_per_page
        return range(start, start + self.lines_per_page)

    def frame_addresses(self, frame: int) -> List[DdrAddress]:
        """DDR coordinates of every line in ``frame``."""
        return [self.line_to_ddr(line) for line in self.lines_of_frame(frame)]

    def banks_of_frame(self, frame: int) -> Set[int]:
        """Flat bank indices the frame's lines touch."""
        return {
            self.geometry.bank_index(addr) for addr in self.frame_addresses(frame)
        }

    def rows_of_frame(self, frame: int) -> Set[tuple]:
        """Row keys the frame's lines touch."""
        return {addr.row_key() for addr in self.frame_addresses(frame)}

    def subarrays_of_frame(self, frame: int) -> Set[int]:
        """Subarray indices (bank-local) the frame's lines touch."""
        return {
            self.geometry.subarray_of_row(addr.row)
            for addr in self.frame_addresses(frame)
        }

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.total_lines:
            raise ValueError(f"line {line} out of range [0, {self.total_lines})")

    def _check_frame(self, frame: int) -> None:
        if not 0 <= frame < self.total_frames:
            raise ValueError(f"frame {frame} out of range [0, {self.total_frames})")


class LinearMapping(AddressMapper):
    """No interleaving: lines fill a row, rows fill a bank, then the next
    bank.  A page occupies consecutive columns of a single row (or a few
    consecutive rows) of one bank."""

    name = "linear"
    interleaves = False
    isolates_domains = False

    def _line_to_ddr_uncached(self, line: int) -> DdrAddress:
        self._check_line(line)
        cols = self.geometry.columns_per_row
        column = line % cols
        rest = line // cols
        row = rest % self.geometry.rows_per_bank
        bank_flat = rest // self.geometry.rows_per_bank
        channel, rank, bank = self.geometry.bank_from_index(bank_flat)
        return DdrAddress(channel, rank, bank, row, column)

    def lines_to_ddr_bulk(self, lines: Iterable[int]) -> List[DdrAddress]:
        geo = self.geometry
        cols = geo.columns_per_row
        rows = geo.rows_per_bank
        coords = self._bank_coords
        total = self.total_lines
        addr = DdrAddress
        out: List[DdrAddress] = []
        append = out.append
        # Consult the scalar memo per line: request windows revisit a
        # working set heavily, and a memo hit (one dict.get) is several
        # times cheaper than re-running the arithmetic and constructing
        # a fresh (frozen, identical) DdrAddress.  The mapping is a
        # static bijection, so sharing memoised objects is safe.
        cache = self._ddr_cache
        cache_get = cache.get
        capacity = self.CACHE_CAPACITY
        hits = misses = 0
        if _is_pow2(cols) and _is_pow2(rows):
            col_shift = cols.bit_length() - 1
            col_mask = cols - 1
            row_shift = rows.bit_length() - 1
            row_mask = rows - 1
            for line in lines:
                address = cache_get(line)
                if address is not None:
                    hits += 1
                    append(address)
                    continue
                if not 0 <= line < total:
                    self._check_line(line)
                rest = line >> col_shift
                channel, rank, bank = coords[rest >> row_shift]
                address = addr(
                    channel, rank, bank, rest & row_mask, line & col_mask
                )
                misses += 1
                if len(cache) >= capacity:
                    del cache[next(iter(cache))]
                    self.memo_evictions += 1
                cache[line] = address
                append(address)
        else:
            for line in lines:
                address = cache_get(line)
                if address is not None:
                    hits += 1
                    append(address)
                    continue
                if not 0 <= line < total:
                    self._check_line(line)
                rest, column = divmod(line, cols)
                bank_flat, row = divmod(rest, rows)
                channel, rank, bank = coords[bank_flat]
                address = addr(channel, rank, bank, row, column)
                misses += 1
                if len(cache) >= capacity:
                    del cache[next(iter(cache))]
                    self.memo_evictions += 1
                cache[line] = address
                append(address)
        self.memo_hits += hits
        self.memo_misses += misses
        return out

    def ddr_to_line(self, address: DdrAddress) -> int:
        bank_flat = self.geometry.bank_index(address)
        rest = bank_flat * self.geometry.rows_per_bank + address.row
        return rest * self.geometry.columns_per_row + address.column


class CachelineInterleaving(AddressMapper):
    """Consecutive cache lines round-robin across all banks."""

    name = "cacheline-interleave"
    interleaves = True
    isolates_domains = False

    def _line_to_ddr_uncached(self, line: int) -> DdrAddress:
        self._check_line(line)
        banks = self.geometry.banks_total
        bank_flat = line % banks
        rest = line // banks
        column = rest % self.geometry.columns_per_row
        row = rest // self.geometry.columns_per_row
        channel, rank, bank = self.geometry.bank_from_index(bank_flat)
        return DdrAddress(channel, rank, bank, row, column)

    def lines_to_ddr_bulk(self, lines: Iterable[int]) -> List[DdrAddress]:
        return self._bulk_interleaved(lines, permute=False)

    def _bulk_interleaved(
        self, lines: Iterable[int], permute: bool
    ) -> List[DdrAddress]:
        """Shared table-driven pipeline for the interleaved schemes.

        ``permute=True`` applies the [63] bank permutation after the
        round-robin split (used by :class:`PermutationInterleaving`).
        """
        geo = self.geometry
        banks = geo.banks_total
        cols = geo.columns_per_row
        coords = self._bank_coords
        total = self.total_lines
        addr = DdrAddress
        pow2 = _is_pow2(banks) and _is_pow2(cols)
        out: List[DdrAddress] = []
        append = out.append
        # Memo-first, as in LinearMapping.lines_to_ddr_bulk: windows
        # revisit their working set, and a dict.get hit beats redoing
        # the split + DdrAddress construction severalfold.
        cache = self._ddr_cache
        cache_get = cache.get
        capacity = self.CACHE_CAPACITY
        hits = misses = 0
        if pow2:
            bank_shift = banks.bit_length() - 1
            bank_mask = banks - 1
            col_shift = cols.bit_length() - 1
            col_mask = cols - 1
            for line in lines:
                address = cache_get(line)
                if address is not None:
                    hits += 1
                    append(address)
                    continue
                if not 0 <= line < total:
                    self._check_line(line)
                rest = line >> bank_shift
                row = rest >> col_shift
                bank_flat = line & bank_mask
                if permute:
                    bank_flat = (bank_flat ^ row) & bank_mask
                channel, rank, bank = coords[bank_flat]
                address = addr(channel, rank, bank, row, rest & col_mask)
                misses += 1
                if len(cache) >= capacity:
                    del cache[next(iter(cache))]
                    self.memo_evictions += 1
                cache[line] = address
                append(address)
        else:
            for line in lines:
                address = cache_get(line)
                if address is not None:
                    hits += 1
                    append(address)
                    continue
                if not 0 <= line < total:
                    self._check_line(line)
                rest, bank_flat = divmod(line, banks)
                row, column = divmod(rest, cols)
                if permute:
                    bank_flat = self._permute(bank_flat, row)
                channel, rank, bank = coords[bank_flat]
                address = addr(channel, rank, bank, row, column)
                misses += 1
                if len(cache) >= capacity:
                    del cache[next(iter(cache))]
                    self.memo_evictions += 1
                cache[line] = address
                append(address)
        self.memo_hits += hits
        self.memo_misses += misses
        return out

    def ddr_to_line(self, address: DdrAddress) -> int:
        bank_flat = self.geometry.bank_index(address)
        rest = address.row * self.geometry.columns_per_row + address.column
        return rest * self.geometry.banks_total + bank_flat


class PermutationInterleaving(CachelineInterleaving):
    """Cache-line interleaving with the bank index permuted by XOR with
    low row bits [63], reducing pathological row-buffer conflicts when
    multiple streams stride across banks."""

    name = "permutation-interleave"

    def lines_to_ddr_bulk(self, lines: Iterable[int]) -> List[DdrAddress]:
        return self._bulk_interleaved(lines, permute=True)

    def _line_to_ddr_uncached(self, line: int) -> DdrAddress:
        base = super()._line_to_ddr_uncached(line)
        bank_flat = self.geometry.bank_index(base)
        permuted = self._permute(bank_flat, base.row)
        channel, rank, bank = self.geometry.bank_from_index(permuted)
        return DdrAddress(channel, rank, bank, base.row, base.column)

    def ddr_to_line(self, address: DdrAddress) -> int:
        permuted = self.geometry.bank_index(address)
        bank_flat = self._permute(permuted, address.row)  # XOR is self-inverse
        channel, rank, bank = self.geometry.bank_from_index(bank_flat)
        return super().ddr_to_line(
            DdrAddress(channel, rank, bank, address.row, address.column)
        )

    def _permute(self, bank_flat: int, row: int) -> int:
        return (bank_flat ^ row) % self.geometry.banks_total if _is_pow2(
            self.geometry.banks_total
        ) else (bank_flat + row) % self.geometry.banks_total


class SubarrayIsolatedInterleaving(AddressMapper):
    """The paper's primitive (§4.1, Fig. 2): full cross-bank interleaving
    with per-domain subarray confinement.

    Frames are bound to a *subarray group* — one subarray index applied in
    every bank.  Within the group, a frame's lines rotate across all banks
    (bank-level parallelism preserved) and pack densely into the group's
    rows.  The host OS binds domains to groups via :meth:`bind_domain` and
    declares frame ownership via :meth:`assign_frame`.  A frame touched
    before any assignment is placed lazily into the default group
    ``frame % subarrays`` (the "indirect specification" path of §4.1:
    placement follows from the physical frame number alone).  Once placed,
    a frame's location never changes until :meth:`release_frame`, so the
    established map is fixed and invertible.
    """

    name = "subarray-isolated"
    interleaves = True
    isolates_domains = True

    def __init__(self, geometry: DramGeometry, page_bytes: int = 4096) -> None:
        super().__init__(geometry, page_bytes)
        if self.lines_per_page % geometry.banks_total != 0:
            raise ValueError(
                "subarray-isolated interleaving requires lines-per-page to be "
                f"a multiple of the bank count ({geometry.banks_total}); "
                f"got {self.lines_per_page}"
            )
        self.lines_per_bank_per_frame = self.lines_per_page // geometry.banks_total
        group_lines = (
            geometry.rows_per_subarray
            * geometry.columns_per_row
            * geometry.banks_total
        )
        self.frames_per_group = group_lines // self.lines_per_page
        self._frame_group: Dict[int, int] = {}
        self._frame_slot: Dict[int, int] = {}
        self._slot_frame: Dict[tuple, int] = {}  # (group, slot) -> frame
        self._group_slots_free: Dict[int, List[int]] = {
            g: list(range(self.frames_per_group - 1, -1, -1))
            for g in range(geometry.subarrays_per_bank)
        }
        self._domain_group: Dict[int, int] = {}
        self._default_groups = geometry.subarrays_per_bank

    # -- domain/frame management (driven by the host OS) ----------------

    def bind_domain(self, domain: int, group: Optional[int] = None) -> int:
        """Bind a trust domain to a subarray group; auto-pick when
        ``group`` is None.  Returns the group.

        Auto-picking prefers groups with no bound domain (sharing a
        group means no isolation between the sharers); among candidates
        it takes the one with the most free slots.  When every group is
        already bound — more tenants than subarrays — the least loaded
        group is reused, which is the §4.1 capacity reality: isolation
        granularity is limited by the subarray count.
        """
        if domain in self._domain_group:
            return self._domain_group[domain]
        if group is None:
            taken = set(self._domain_group.values())
            candidates = [
                g for g in self._group_slots_free if g not in taken
            ] or list(self._group_slots_free)
            group = max(
                candidates,
                key=lambda g: len(self._group_slots_free[g]),
            )
        if not 0 <= group < self.geometry.subarrays_per_bank:
            raise ValueError(f"subarray group {group} out of range")
        self._domain_group[domain] = group
        return group

    def group_of_domain(self, domain: int) -> Optional[int]:
        return self._domain_group.get(domain)

    def unbind_domain(self, domain: int) -> None:
        """Release a domain's group binding (the host OS calls this when
        the domain's last frame is freed or the domain is destroyed, so
        the group becomes available for exclusive use by a new tenant).
        The caller must ensure the domain holds no placed frames."""
        self._domain_group.pop(domain, None)

    def domains_in_group(self, group: int) -> Set[int]:
        return {d for d, g in self._domain_group.items() if g == group}

    def assign_frame(self, frame: int, domain: int) -> None:
        """Place ``frame`` into its domain's subarray group.

        Must happen before the frame is accessed (the host OS assigns
        frames at allocation time, exactly as §4.1 prescribes).
        """
        self._check_frame(frame)
        if frame in self._frame_group:
            raise ValueError(f"frame {frame} is already assigned")
        group = self._domain_group.get(domain)
        if group is None:
            group = self.bind_domain(domain)
        self._place(frame, group)

    def release_frame(self, frame: int) -> None:
        """Return a frame's slot to its group (page freed)."""
        group = self._frame_group.pop(frame, None)
        if group is None:
            return
        slot = self._frame_slot.pop(frame)
        del self._slot_frame[(group, slot)]
        self._group_slots_free[group].append(slot)
        # The slot may be re-placed for another frame; drop stale memos.
        self._invalidate_lines(self.lines_of_frame(frame))

    def group_of_frame(self, frame: int) -> int:
        assigned = self._frame_group.get(frame)
        if assigned is not None:
            return assigned
        return frame % self._default_groups

    def _place(self, frame: int, group: int) -> None:
        free = self._group_slots_free[group]
        if not free:
            raise MemoryError(f"subarray group {group} is full")
        slot = free.pop()
        self._frame_group[frame] = group
        self._frame_slot[frame] = slot
        self._slot_frame[(group, slot)] = frame

    def _ensure_placed(self, frame: int) -> None:
        """Lazily place a frame that was never explicitly assigned."""
        if frame not in self._frame_group:
            self._place(frame, frame % self._default_groups)

    # -- the bijection ---------------------------------------------------

    def lines_to_ddr_bulk(self, lines: Iterable[int]) -> List[DdrAddress]:
        # Must iterate strictly in order: a never-touched frame is placed
        # lazily on first touch, and slot assignment depends on placement
        # order.  Bulk translation of a request window sees lines in
        # arrival order, exactly like the scalar path would.
        geo = self.geometry
        banks = geo.banks_total
        cols = geo.columns_per_row
        rows_per_subarray = geo.rows_per_subarray
        lpp = self.lines_per_page
        lpbpf = self.lines_per_bank_per_frame
        coords = self._bank_coords
        frame_group = self._frame_group
        frame_slot = self._frame_slot
        default_groups = self._default_groups
        total = self.total_lines
        addr = DdrAddress
        out: List[DdrAddress] = []
        append = out.append
        last_frame = -1
        group = slot = frame_base = 0
        for line in lines:
            if not 0 <= line < total:
                self._check_line(line)
            frame = line // lpp
            if frame != last_frame:
                if frame not in frame_group:
                    self._place(frame, frame % default_groups)
                group = frame_group[frame]
                slot = frame_slot[frame]
                frame_base = frame * lpp
                last_frame = frame
            offset = line - frame_base
            packed = slot * lpbpf + offset // banks
            row_in_subarray = packed // cols
            if row_in_subarray >= rows_per_subarray:
                raise MemoryError(
                    f"frame slot {slot} exceeds subarray group capacity"
                )
            channel, rank, bank = coords[(offset + slot) % banks]
            append(
                addr(
                    channel,
                    rank,
                    bank,
                    group * rows_per_subarray + row_in_subarray,
                    packed % cols,
                )
            )
        return out

    def _line_to_ddr_uncached(self, line: int) -> DdrAddress:
        self._check_line(line)
        frame = self.frame_of_line(line)
        offset = line - frame * self.lines_per_page
        self._ensure_placed(frame)
        group = self._frame_group[frame]
        slot = self._frame_slot[frame]
        # Rotate the starting bank by slot so groups load banks evenly.
        bank_flat = (offset + slot) % self.geometry.banks_total
        within_bank = offset // self.geometry.banks_total
        packed = slot * self.lines_per_bank_per_frame + within_bank
        column = packed % self.geometry.columns_per_row
        row_in_subarray = packed // self.geometry.columns_per_row
        if row_in_subarray >= self.geometry.rows_per_subarray:
            raise MemoryError(
                f"frame slot {slot} exceeds subarray group capacity"
            )
        row = group * self.geometry.rows_per_subarray + row_in_subarray
        channel, rank, bank = self.geometry.bank_from_index(bank_flat)
        return DdrAddress(channel, rank, bank, row, column)

    def ddr_to_line(self, address: DdrAddress) -> int:
        group = self.geometry.subarray_of_row(address.row)
        row_in_subarray = address.row - group * self.geometry.rows_per_subarray
        packed = (
            row_in_subarray * self.geometry.columns_per_row + address.column
        )
        slot = packed // self.lines_per_bank_per_frame
        within_bank = packed % self.lines_per_bank_per_frame
        try:
            frame = self._slot_frame[(group, slot)]
        except KeyError:
            raise KeyError(
                f"no frame is mapped at subarray group {group}, slot {slot}; "
                "ddr_to_line is only defined for addresses the forward map "
                "has produced"
            ) from None
        bank_flat = self.geometry.bank_index(address)
        offset = (
            within_bank * self.geometry.banks_total
            + (bank_flat - slot) % self.geometry.banks_total
        )
        return frame * self.lines_per_page + offset


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


MAPPING_SCHEMES = {
    cls.name: cls
    for cls in (
        LinearMapping,
        CachelineInterleaving,
        PermutationInterleaving,
        SubarrayIsolatedInterleaving,
    )
}


def make_mapper(
    scheme: str, geometry: DramGeometry, page_bytes: int = 4096
) -> AddressMapper:
    """Instantiate a mapping scheme by name."""
    try:
        cls = MAPPING_SCHEMES[scheme]
    except KeyError:
        known = ", ".join(sorted(MAPPING_SCHEMES))
        raise KeyError(f"unknown mapping scheme {scheme!r}; known: {known}") from None
    return cls(geometry, page_bytes)
