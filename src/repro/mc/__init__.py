"""Memory-controller model: address mapping schemes (including the
subarray-isolated interleaving primitive), ACT counters with precise
overflow interrupts, refresh back-ends, and request timing."""

from repro.mc.address_map import (
    MAPPING_SCHEMES,
    AddressMapper,
    CachelineInterleaving,
    LinearMapping,
    PermutationInterleaving,
    SubarrayIsolatedInterleaving,
    make_mapper,
)
from repro.mc.controller import (
    CompletedRequest,
    MemoryController,
    MemoryRequest,
)
from repro.mc.counters import ActCounter, ActInterrupt
from repro.mc.scheduler import POLICIES, BatchScheduler
from repro.mc.stats import ControllerStats

__all__ = [
    "MAPPING_SCHEMES",
    "ActCounter",
    "BatchScheduler",
    "POLICIES",
    "ActInterrupt",
    "AddressMapper",
    "CachelineInterleaving",
    "CompletedRequest",
    "ControllerStats",
    "LinearMapping",
    "MemoryController",
    "MemoryRequest",
    "PermutationInterleaving",
    "SubarrayIsolatedInterleaving",
    "make_mapper",
]
