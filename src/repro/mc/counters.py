"""Memory-controller ACT counters and the precise-interrupt primitive.

Existing Intel uncore counters can count ACTs per channel and interrupt
after a configurable count, but report *no address* (§4.2) — system
software learns "some row got activated a lot" and cannot act.  The
paper's primitive augments the ACT_COUNT overflow event to report the
physical (cache-line) address of the RD/WR that triggered the latest ACT.

Two further details from §4.2 are modelled:

* the host OS resets the counter to an arbitrary value after each
  overflow, and can *randomize* the reset so attackers cannot pace their
  ACTs to stay just under the detection threshold (experiment E10);
* the counter sits in the MC, after the point where core and DMA traffic
  merge, so DMA-driven ACTs are counted — unlike the core performance
  counters ANVIL relies on (experiment E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class ActInterrupt:
    """One ACT_COUNT overflow event delivered to the host OS.

    ``physical_line`` is the cache-line index whose RD/WR caused the
    latest ACT — present only when the MC implements the paper's precise
    primitive, ``None`` on legacy hardware.  ``from_dma`` flags whether
    the triggering request was a direct memory access (visible to the MC,
    invisible to core counters).
    """

    time_ns: int
    channel: int
    count_at_overflow: int
    physical_line: Optional[int]
    from_dma: bool


InterruptHandler = Callable[[ActInterrupt], None]


class ActCounter:
    """Per-channel ACT counter with configurable overflow interrupt.

    ``precise=True`` models the paper's primitive (address reported);
    ``precise=False`` models today's hardware (count only).

    ``reset_jitter`` > 0 randomizes the post-overflow reset value within
    ``[0, reset_jitter]`` counted ACTs, advancing the next overflow by a
    secret amount (§4.2's anti-evasion measure).
    """

    def __init__(
        self,
        channel: int,
        threshold: int,
        precise: bool = True,
        reset_jitter: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_jitter < 0:
            raise ValueError("reset_jitter must be >= 0")
        if reset_jitter >= threshold:
            raise ValueError("reset_jitter must be smaller than the threshold")
        self.channel = channel
        self.threshold = threshold
        self.precise = precise
        self.reset_jitter = reset_jitter
        self._rng = rng or random.Random(0)
        self._count = 0
        self._next_overflow_at = self._draw_overflow_point()
        self._handlers: List[InterruptHandler] = []
        self.total_acts = 0
        self.interrupts_raised = 0

    # ------------------------------------------------------------------
    # Host-OS interface
    # ------------------------------------------------------------------

    def subscribe(self, handler: InterruptHandler) -> None:
        """Register a host-OS interrupt handler."""
        self._handlers.append(handler)

    def set_threshold(self, threshold: int) -> None:
        """Reconfigure the overflow threshold (host-OS controlled, §4.2)."""
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.reset_jitter >= threshold:
            raise ValueError("threshold must exceed the configured jitter")
        self.threshold = threshold
        self._count = 0
        self._next_overflow_at = self._draw_overflow_point()

    # ------------------------------------------------------------------
    # MC-side event ingestion
    # ------------------------------------------------------------------

    def on_act(
        self,
        time_ns: int,
        physical_line: int,
        from_dma: bool,
    ) -> Optional[ActInterrupt]:
        """Record one ACT on this channel; deliver an interrupt on
        overflow.  Returns the interrupt, if one fired."""
        self.total_acts += 1
        self._count += 1
        if self._count < self._next_overflow_at:
            return None
        interrupt = ActInterrupt(
            time_ns=time_ns,
            channel=self.channel,
            count_at_overflow=self._count,
            physical_line=physical_line if self.precise else None,
            from_dma=from_dma,
        )
        self.interrupts_raised += 1
        self._count = 0
        self._next_overflow_at = self._draw_overflow_point()
        for handler in self._handlers:
            handler(interrupt)
        return interrupt

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _draw_overflow_point(self) -> int:
        """ACTs until the next overflow, shortened by secret jitter."""
        if self.reset_jitter:
            return max(1, self.threshold - self._rng.randint(0, self.reset_jitter))
        return self.threshold
