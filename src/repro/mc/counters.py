"""Memory-controller ACT counters and the precise-interrupt primitive.

Existing Intel uncore counters can count ACTs per channel and interrupt
after a configurable count, but report *no address* (§4.2) — system
software learns "some row got activated a lot" and cannot act.  The
paper's primitive augments the ACT_COUNT overflow event to report the
physical (cache-line) address of the RD/WR that triggered the latest ACT.

Two further details from §4.2 are modelled:

* the host OS resets the counter to an arbitrary value after each
  overflow, and can *randomize* the reset so attackers cannot pace their
  ACTs to stay just under the detection threshold (experiment E10);
* the counter sits in the MC, after the point where core and DMA traffic
  merge, so DMA-driven ACTs are counted — unlike the core performance
  counters ANVIL relies on (experiment E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ActInterrupt:
    """One ACT_COUNT overflow event delivered to the host OS.

    ``physical_line`` is the cache-line index whose RD/WR caused the
    latest ACT — present only when the MC implements the paper's precise
    primitive, ``None`` on legacy hardware.  ``from_dma`` flags whether
    the triggering request was a direct memory access (visible to the MC,
    invisible to core counters).
    """

    time_ns: int
    channel: int
    count_at_overflow: int
    physical_line: Optional[int]
    from_dma: bool


InterruptHandler = Callable[[ActInterrupt], None]

# Delivery-path hook (fault injection): inspects an interrupt about to be
# delivered to the host OS and returns the interrupt that actually arrives
# — possibly delayed or with a corrupted count — or ``None`` when the
# delivery is lost entirely.  The hardware-side bookkeeping (counts,
# ``interrupts_raised``) is unaffected; only host visibility is.
DeliveryFilter = Callable[[ActInterrupt], Optional[ActInterrupt]]

# Handler-failure hook: (interrupt, handler, error) after a subscribed
# handler raised.  Installed by the MC so failures reach the obs layer.
HandlerErrorHook = Callable[[ActInterrupt, InterruptHandler, Exception], None]


def per_channel_rng(seed: int, channel: int) -> random.Random:
    """The canonical per-channel RNG derivation: ``seed ^ channel``,
    mirroring how defenses derive their own streams from the system seed
    (e.g. PARA's ``config.seed ^ 0xBA5E``).  Keeping the derivation in
    one place is what guarantees two channels never share a jitter
    sequence — the §4.2 anti-evasion property E10 measures."""
    return random.Random(seed ^ channel)


class ActCounter:
    """Per-channel ACT counter with configurable overflow interrupt.

    ``precise=True`` models the paper's primitive (address reported);
    ``precise=False`` models today's hardware (count only).

    ``reset_jitter`` > 0 randomizes the post-overflow reset value within
    ``[0, reset_jitter]`` counted ACTs, advancing the next overflow by a
    secret amount (§4.2's anti-evasion measure).
    """

    def __init__(
        self,
        channel: int,
        threshold: int,
        precise: bool = True,
        reset_jitter: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_jitter < 0:
            raise ValueError("reset_jitter must be >= 0")
        if reset_jitter >= threshold:
            raise ValueError("reset_jitter must be smaller than the threshold")
        self.channel = channel
        self.threshold = threshold
        self.precise = precise
        self.reset_jitter = reset_jitter
        # Default RNG: derived from the channel index, never a shared
        # constant.  ``random.Random(0)`` here once gave every channel
        # the *identical* jitter sequence, so an attacker who learned one
        # channel's overflow phase knew them all — exactly the evasion
        # §4.2's jitter exists to prevent.  Wiring code (the MC) passes
        # an explicit per-channel RNG derived from the system seed.
        self._rng = rng if rng is not None else per_channel_rng(0xAC7C0, channel)
        self._count = 0
        self._next_overflow_at = self._draw_overflow_point()
        self._handlers: List[InterruptHandler] = []
        self.delivery_filter: Optional[DeliveryFilter] = None
        self.read_filter: Optional[Callable[[int], int]] = None
        self.on_handler_error: Optional[HandlerErrorHook] = None
        self.total_acts = 0
        self.interrupts_raised = 0
        self.interrupts_delivered = 0
        self.interrupts_lost = 0
        self.handler_failures = 0

    # ------------------------------------------------------------------
    # Host-OS interface
    # ------------------------------------------------------------------

    def subscribe(self, handler: InterruptHandler) -> None:
        """Register a host-OS interrupt handler."""
        self._handlers.append(handler)

    def read_count(self) -> int:
        """Host-OS read of the live count (what an uncore-counter RDMSR
        returns).  ``read_filter`` is the fault-injection seam for §4.2's
        unreliable-hardware concern: the *architectural* count is
        unaffected, only the value software observes."""
        if self.read_filter is not None:
            return self.read_filter(self._count)
        return self._count

    @property
    def pending(self) -> Tuple[int, int]:
        """Oracle view ``(count, next_overflow_at)`` for invariants and
        tests — never routed through the read filter."""
        return self._count, self._next_overflow_at

    def set_threshold(self, threshold: int) -> None:
        """Reconfigure the overflow threshold (host-OS controlled, §4.2).

        The accumulated in-flight count is *preserved*: reconfiguration
        re-draws only the overflow point under the new threshold.  An
        earlier version zeroed ``_count`` here, which meant any host-OS
        reconfiguration mid-window forgave every ACT already counted —
        an attacker who could provoke reconfigurations (or merely time
        its bursts around routine ones) paced below detection for free.
        If the ACTs already counted meet the new (possibly smaller)
        overflow point, the very next ACT delivers the interrupt.
        """
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.reset_jitter >= threshold:
            raise ValueError("threshold must exceed the configured jitter")
        self.threshold = threshold
        self._next_overflow_at = self._draw_overflow_point()

    def forgive_pending(self) -> None:
        """Zero the in-flight count.  Fault-emulation seam only: this
        re-creates the historical ``set_threshold`` bug (reconfiguration
        forgiving every counted ACT) so the differential harness can
        demonstrate what the fix buys.  Nothing in the production wiring
        calls this."""
        self._count = 0

    # ------------------------------------------------------------------
    # MC-side event ingestion
    # ------------------------------------------------------------------

    def on_act(
        self,
        time_ns: int,
        physical_line: int,
        from_dma: bool,
    ) -> Optional[ActInterrupt]:
        """Record one ACT on this channel; deliver an interrupt on
        overflow.  Returns the interrupt, if one fired."""
        self.total_acts += 1
        self._count += 1
        if self._count < self._next_overflow_at:
            return None
        interrupt = ActInterrupt(
            time_ns=time_ns,
            channel=self.channel,
            count_at_overflow=self._count,
            physical_line=physical_line if self.precise else None,
            from_dma=from_dma,
        )
        self.interrupts_raised += 1
        self._count = 0
        self._next_overflow_at = self._draw_overflow_point()
        delivered: Optional[ActInterrupt] = interrupt
        if self.delivery_filter is not None:
            # Fault-injection seam: the hardware raised the interrupt
            # (counts above already reflect that); the delivery to the
            # host may be dropped, delayed, or corrupted.
            delivered = self.delivery_filter(interrupt)
            if delivered is None:
                self.interrupts_lost += 1
                return None
        self.interrupts_delivered += 1
        # Handlers are isolated from each other: one raising host-OS
        # handler must not starve later subscribers, nor propagate into
        # the MC request path it was called from.  Failures are counted
        # and surfaced through ``on_handler_error`` (the MC routes them
        # to the obs layer) instead of unwinding the hot path.
        for handler in self._handlers:
            try:
                handler(delivered)
            except Exception as error:
                self.handler_failures += 1
                if self.on_handler_error is not None:
                    self.on_handler_error(delivered, handler, error)
        return delivered

    def on_act_bulk(
        self,
        times: Sequence[int],
        physical_lines: Sequence[int],
        from_dma: Sequence[bool],
    ) -> List[ActInterrupt]:
        """Record a vector of ACTs; return every interrupt *delivered*.

        Exactly equivalent to calling :meth:`on_act` per element — the
        runs of ACTs that cannot reach the overflow point are absorbed
        in O(1) bookkeeping, and each crossing is handed to the scalar
        path so jitter redraw, delivery filtering, and handler dispatch
        behave identically.
        """
        count = len(times)
        delivered: List[ActInterrupt] = []
        index = 0
        while index < count:
            # ACTs that leave the count strictly below the overflow
            # point cannot raise an interrupt: absorb them wholesale.
            headroom = self._next_overflow_at - self._count - 1
            if headroom > 0:
                take = headroom if headroom < count - index else count - index
                self._count += take
                self.total_acts += take
                index += take
                if index >= count:
                    break
            interrupt = self.on_act(
                times[index], physical_lines[index], from_dma[index]
            )
            if interrupt is not None:
                delivered.append(interrupt)
            index += 1
        return delivered

    def absorb(self, count: int) -> None:
        """Count ``count`` ACTs known not to reach the overflow point.

        The columnar engine's batch-end synchronisation: it tracks the
        live count locally (dispatching through :meth:`on_act` at each
        crossing) and settles the quiet remainder here.  Refuses a run
        that would cross — that must go through :meth:`on_act` so the
        interrupt machinery fires.
        """
        if count <= 0:
            return
        if self._count + count >= self._next_overflow_at:
            raise ValueError(
                "absorb() would cross the overflow point; "
                "route the crossing ACT through on_act()"
            )
        self._count += count
        self.total_acts += count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _draw_overflow_point(self) -> int:
        """ACTs until the next overflow, shortened by secret jitter."""
        if self.reset_jitter:
            return max(1, self.threshold - self._rng.randint(0, self.reset_jitter))
        return self.threshold
