"""Enclave memory semantics (§4.4).

In enclave contexts (SGX/TDX/SEV-class), the host OS is *untrusted*; only
the enclave and the hardware are.  The paper distinguishes two regimes:

* **Integrity-checked** enclave memory: a Rowhammer flip cannot silently
  corrupt data — the next access fails its integrity check and the
  machine locks up, requiring reset (SGX-Bomb).  Rowhammer degrades to a
  denial-of-service, which enclave threat models typically already
  concede to the host.

* **Non-integrity-checked** enclave memory: flips corrupt silently, so
  the enclave needs the paper's defenses: verified subarray placement,
  ACT interrupts delivered to the enclave, and (in isolated subarrays) a
  grant to issue ``refresh`` on its own address space.

``EnclaveRuntime`` models both regimes.  The simulation harness feeds it
every bit flip; the runtime decides the architectural consequence on the
enclave's next touched access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.dram.disturbance import BitFlip
from repro.hostos.domains import TrustDomain

RowKey = Tuple[int, int, int, int]


class SystemLockupError(Exception):
    """An integrity check failed: the platform locks up until reset
    (the SGX-Bomb outcome [27])."""


@dataclass
class EnclaveRuntime:
    """State machine for one enclave's memory-integrity behaviour."""

    domain: TrustDomain
    integrity_checked: bool = True

    #: rows with latent (not yet accessed) corruption
    _poisoned_rows: Set[RowKey] = field(default_factory=set)
    #: silent corruptions observed (non-checked regime only)
    silent_corruptions: int = 0
    #: the machine locked up (checked regime); terminal
    locked_up: bool = False
    #: ACT interrupts forwarded to the enclave (§4.4 frequency defense)
    act_warnings: int = 0

    def __post_init__(self) -> None:
        if not self.domain.enclave:
            raise ValueError("EnclaveRuntime requires an enclave trust domain")

    # ------------------------------------------------------------------
    # Fed by the harness
    # ------------------------------------------------------------------

    def observe_flip(self, flip: BitFlip) -> None:
        """Record a flip if it landed in this enclave's memory."""
        if self.domain.asid in flip.victim_domains:
            self._poisoned_rows.add(flip.victim)

    def on_act_interrupt_forwarded(self) -> None:
        """§4.4: the CPU reports ACT interrupts directly to the enclave
        so it can infer it is under attack and remap or exit."""
        self.act_warnings += 1

    # ------------------------------------------------------------------
    # Enclave-side access path
    # ------------------------------------------------------------------

    def access_row(self, row_key: RowKey) -> bool:
        """The enclave touches data in ``row_key``.

        Returns True when the access succeeded cleanly.  In the
        integrity-checked regime, touching a poisoned row raises
        :class:`SystemLockupError`; in the unchecked regime it counts a
        silent corruption and returns False.
        """
        if self.locked_up:
            raise SystemLockupError("machine is locked up; reset required")
        if row_key not in self._poisoned_rows:
            return True
        if self.integrity_checked:
            self.locked_up = True
            raise SystemLockupError(
                f"integrity check failed on row {row_key}: locking up (§4.4)"
            )
        self.silent_corruptions += 1
        self._poisoned_rows.discard(row_key)  # corrupted data now "read in"
        return False

    @property
    def pending_poisoned_rows(self) -> int:
        return len(self._poisoned_rows)

    def should_evacuate(self, warning_threshold: int) -> bool:
        """Frequency-defense policy from §4.4: after enough forwarded ACT
        warnings the enclave should request a remap or peacefully exit."""
        return self.act_warnings >= warning_threshold
