"""Defense portfolios: what a cloud provider actually deploys.

The paper's taxonomy (§2.2) is per-mechanism, but §4's deployment story
is a *combination*: subarray isolation for the cross-tenant threat, plus
a frequency- or refresh-centric layer for whatever remains (intra-domain
disturbance of critical assets, §2.2's caveat).  ``DefensePortfolio``
manages such a stack as one object — ordered attachment, aggregate cost,
a combined coverage posture derived from the members' taxonomy traits —
and is what the defense-in-depth integration tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.taxonomy import AttackCondition, MitigationClass
from repro.defenses.base import Defense, DefenseCost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System


@dataclass(frozen=True)
class Posture:
    """The combined coverage a portfolio claims, derived from traits."""

    eliminated_conditions: Tuple[AttackCondition, ...]
    stops_cross_domain: bool
    stops_intra_domain: bool
    covers_dma: bool

    @property
    def complete(self) -> bool:
        """Covers cross- and intra-domain threats including DMA."""
        return self.stops_cross_domain and self.stops_intra_domain and self.covers_dma


class DefensePortfolio:
    """An ordered stack of defenses managed as one unit."""

    def __init__(self, defenses: Sequence[Defense]) -> None:
        if not defenses:
            raise ValueError("a portfolio needs at least one defense")
        names = [defense.name for defense in defenses]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate defenses in portfolio: {names}")
        self.defenses: List[Defense] = list(defenses)
        self.attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, system: "System") -> None:
        """Attach every member in order.  Fails atomically in the sense
        that a missing primitive surfaces before any simulation runs;
        partially attached members stay attached (defenses have no
        detach — build a fresh system to retry)."""
        if self.attached:
            raise RuntimeError("portfolio is already attached")
        for defense in self.defenses:
            defense.attach(system)
        self.attached = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def posture(self) -> Posture:
        """Combined claims: a threat is covered if *any* member covers
        it; a condition is eliminated if any member's class eliminates
        it.  (Whether the claims hold is what the experiments test.)"""
        conditions = tuple(sorted(
            {defense.traits.eliminated_condition for defense in self.defenses},
            key=lambda condition: condition.value,
        ))
        return Posture(
            eliminated_conditions=conditions,
            stops_cross_domain=any(
                defense.traits.stops_cross_domain for defense in self.defenses
            ),
            stops_intra_domain=any(
                defense.traits.stops_intra_domain for defense in self.defenses
            ),
            covers_dma=all(
                defense.traits.covers_dma
                for defense in self.defenses
                if defense.traits.stops_cross_domain
            ),
        )

    def total_cost(self) -> DefenseCost:
        """Aggregate static budget across members."""
        return DefenseCost(
            sram_bits=sum(d.cost().sram_bits for d in self.defenses),
            reserved_capacity_fraction=sum(
                d.cost().reserved_capacity_fraction for d in self.defenses
            ),
            reserved_cache_ways=sum(
                d.cost().reserved_cache_ways for d in self.defenses
            ),
        )

    def counters(self) -> Dict[str, Dict[str, int]]:
        return {defense.name: dict(defense.counters) for defense in self.defenses}

    def classes(self) -> Tuple[MitigationClass, ...]:
        return tuple(defense.traits.mitigation_class for defense in self.defenses)

    def describe_rows(self) -> List[Dict[str, object]]:
        return [defense.describe() for defense in self.defenses]
