"""Trust domains: the units of isolation the host OS enforces.

A domain is a tenant — a VM in the cloud scenario the paper motivates, or
a process on a single host.  Domains are identified by ASID, the same tag
§4.1 proposes for coordinating subarray groups between the host OS and
the memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass(frozen=True)
class TrustDomain:
    """One tenant.  ``enclave`` marks §4.4's special case; enclave memory
    may additionally be integrity-checked (see :mod:`repro.hostos.enclave`)."""

    asid: int
    name: str
    enclave: bool = False

    def __post_init__(self) -> None:
        if self.asid < 0:
            raise ValueError("asid must be >= 0")
        if not self.name:
            raise ValueError("name must be non-empty")


class DomainRegistry:
    """The host OS's view of all tenants."""

    def __init__(self) -> None:
        self._domains: Dict[int, TrustDomain] = {}
        self._next_asid = 1  # ASID 0 is reserved for the host itself

    def create(self, name: str, enclave: bool = False) -> TrustDomain:
        domain = TrustDomain(asid=self._next_asid, name=name, enclave=enclave)
        self._domains[domain.asid] = domain
        self._next_asid += 1
        return domain

    def get(self, asid: int) -> TrustDomain:
        try:
            return self._domains[asid]
        except KeyError:
            raise KeyError(f"no trust domain with ASID {asid}") from None

    def destroy(self, asid: int) -> None:
        if asid not in self._domains:
            raise KeyError(f"no trust domain with ASID {asid}")
        del self._domains[asid]

    def __contains__(self, asid: int) -> bool:
        return asid in self._domains

    def __iter__(self) -> Iterator[TrustDomain]:
        return iter(self._domains.values())

    def __len__(self) -> int:
        return len(self._domains)
