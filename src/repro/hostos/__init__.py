"""Host OS / hypervisor: trust domains, the policy-aware page-frame
allocator, and enclave memory semantics."""

from repro.hostos.allocator import (
    AllocationPolicy,
    OutOfMemoryError,
    PageAllocator,
    PolicyUnsupportedError,
)
from repro.hostos.domains import DomainRegistry, TrustDomain
from repro.hostos.enclave import EnclaveRuntime, SystemLockupError
from repro.hostos.portfolio import DefensePortfolio, Posture

__all__ = [
    "AllocationPolicy",
    "DomainRegistry",
    "DefensePortfolio",
    "EnclaveRuntime",
    "Posture",
    "OutOfMemoryError",
    "PageAllocator",
    "PolicyUnsupportedError",
    "SystemLockupError",
    "TrustDomain",
]
