"""The host OS page-frame allocator, with isolation-aware policies.

The allocator is where isolation-centric defenses live in software
(§2.2, §4.1).  Four policies are modelled:

``DEFAULT``
    First-fit, domain-oblivious — today's allocator.  Under any mapping,
    frames from different tenants end up adjacent in DRAM.

``BANK_PARTITION``
    PALLOC-style [61]: each domain gets disjoint banks.  Only possible
    when interleaving is disabled (``LinearMapping``); under interleaved
    mappings every frame touches every bank, so the policy refuses to
    operate — this is the §4.1 conflict between isolation and
    interleaving, reproduced as a hard error.

``GUARD_ROWS``
    ZebRAM-style [34]: ``blast_radius`` unallocated guard rows between
    any two frames of different domains.  Also requires row-contiguous
    (linear) mapping, and burns capacity on guards.

``SUBARRAY_AWARE``
    The paper's proposal (§4.1): requires the subarray-isolated
    interleaving primitive; the allocator simply binds each domain to a
    subarray group and lets the MC place frames.  Interleaving stays on.

The allocator also answers ``domains_in_row`` — which domains own data in
a given (logical) DRAM row — which the harness composes with the internal
row remap to attribute bit flips.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dram.geometry import DdrAddress
from repro.mc.address_map import AddressMapper, SubarrayIsolatedInterleaving

RowKey = Tuple[int, int, int, int]


class AllocationPolicy(enum.Enum):
    DEFAULT = "default"
    BANK_PARTITION = "bank-partition"
    GUARD_ROWS = "guard-rows"
    SUBARRAY_AWARE = "subarray-aware"


class PolicyUnsupportedError(Exception):
    """The chosen policy cannot work on the configured address mapping."""


class OutOfMemoryError(Exception):
    """No frame satisfies the policy's constraints."""


class PageAllocator:
    """Frame allocation under one of the isolation policies."""

    def __init__(
        self,
        mapper: AddressMapper,
        policy: AllocationPolicy = AllocationPolicy.DEFAULT,
        guard_radius: int = 1,
    ) -> None:
        self.mapper = mapper
        self.policy = policy
        self.guard_radius = guard_radius
        self._owner: Dict[int, int] = {}  # frame -> asid
        self._free: Set[int] = set(range(mapper.total_frames))
        self._bank_owner: Dict[int, int] = {}  # flat bank -> asid (partition)
        # row_key -> {asid: number of allocated frames with data in the
        # row} — reference counts so free() can retract attribution.
        self._row_domains: Dict[RowKey, Dict[int, int]] = {}
        # frame -> rows memo (a frame's placement is stable while it is
        # known here; invalidated on free, when subarray mappers may
        # re-place the frame)
        self._frame_rows: Dict[int, FrozenSet[RowKey]] = {}
        # frames permanently taken out of service (remap audit, §4.1)
        self._retired: Set[int] = set()
        self._validate_policy()

    def _rows_of_frame(self, frame: int) -> FrozenSet[RowKey]:
        rows = self._frame_rows.get(frame)
        if rows is None:
            rows = frozenset(self.mapper.rows_of_frame(frame))
            self._frame_rows[frame] = rows
        return rows

    # ------------------------------------------------------------------
    # Policy feasibility (the §4.1 conflict, surfaced at construction)
    # ------------------------------------------------------------------

    def _validate_policy(self) -> None:
        if self.policy in (AllocationPolicy.BANK_PARTITION, AllocationPolicy.GUARD_ROWS):
            if self.mapper.interleaves:
                raise PolicyUnsupportedError(
                    f"{self.policy.value} requires interleaving to be disabled "
                    f"(mapping {self.mapper.name!r} spreads every page across "
                    "banks); §4.1 — this is the performance-vs-isolation "
                    "conflict the subarray primitive resolves"
                )
        if self.policy is AllocationPolicy.SUBARRAY_AWARE:
            if not isinstance(self.mapper, SubarrayIsolatedInterleaving):
                raise PolicyUnsupportedError(
                    "subarray-aware allocation requires the subarray-isolated "
                    "interleaving primitive in the memory controller (§4.1)"
                )
        if self.guard_radius < 1:
            raise ValueError("guard_radius must be >= 1")

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(
        self,
        asid: int,
        count: int = 1,
        avoid_rows: Optional[FrozenSet[RowKey]] = None,
    ) -> List[int]:
        """Allocate ``count`` frames for domain ``asid``.

        ``avoid_rows`` soft-excludes frames touching the given DRAM rows
        — the destination-rotation hook ACT wear-leveling needs (§4.2):
        without it consecutive move targets cluster into one row and
        re-concentrate the activations the move was meant to disperse.
        When no frame avoids the rows, the constraint is dropped rather
        than failing (availability beats dispersal).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        frames = []
        try:
            for _ in range(count):
                frames.append(self._allocate_one(asid, avoid_rows))
        except OutOfMemoryError:
            for frame in frames:
                self.free(frame)
            raise
        return frames

    def free(self, frame: int) -> None:
        asid = self._owner.pop(frame, None)
        if asid is None:
            raise KeyError(f"frame {frame} is not allocated")
        self._free.add(frame)
        rows = self._rows_of_frame(frame)
        self._frame_rows.pop(frame, None)
        if isinstance(self.mapper, SubarrayIsolatedInterleaving):
            self.mapper.release_frame(frame)
        for row in rows:
            counts = self._row_domains.get(row)
            if counts is None:
                continue
            counts[asid] -= 1
            if counts[asid] <= 0:
                del counts[asid]
            if not counts:
                del self._row_domains[row]
        if self.policy is AllocationPolicy.BANK_PARTITION:
            remaining = {
                bank
                for other, owner in self._owner.items()
                if owner == asid
                for bank in self.mapper.banks_of_frame(other)
            }
            for bank in list(self._bank_owner):
                if self._bank_owner[bank] == asid and bank not in remaining:
                    del self._bank_owner[bank]
        if self.policy is AllocationPolicy.SUBARRAY_AWARE:
            # Release the domain's subarray-group binding once its last
            # frame is gone, so a future tenant can claim the group
            # exclusively.
            if not any(owner == asid for owner in self._owner.values()):
                assert isinstance(self.mapper, SubarrayIsolatedInterleaving)
                self.mapper.unbind_domain(asid)

    def retire(self, frame: int) -> None:
        """Permanently take ``frame`` out of service.

        Used by the §4.1 remap audit: a frame whose rows are internally
        remapped across a subarray boundary is treacherous *forever*
        (remaps are a manufacturing property), so after evacuating its
        data the frame must never be handed out again — and, under
        subarray-isolated mapping, its placement slot must stay occupied
        so no future frame inherits the same escaping row.
        """
        asid = self._owner.pop(frame, None)
        if asid is None:
            raise KeyError(f"frame {frame} is not allocated")
        for row in self._rows_of_frame(frame):
            counts = self._row_domains.get(row)
            if counts is None:
                continue
            counts[asid] = counts.get(asid, 1) - 1
            if counts[asid] <= 0:
                counts.pop(asid, None)
            if not counts:
                del self._row_domains[row]
        self._retired.add(frame)

    @property
    def retired_frames(self) -> int:
        return len(self._retired)

    # ------------------------------------------------------------------
    # Attribution and introspection
    # ------------------------------------------------------------------

    def owner_of(self, frame: int) -> Optional[int]:
        return self._owner.get(frame)

    def frames_of(self, asid: int) -> List[int]:
        return sorted(f for f, owner in self._owner.items() if owner == asid)

    def domains_in_row(self, row_key: RowKey) -> FrozenSet[int]:
        """Domains whose data currently lives in the given *logical* row."""
        return frozenset(self._row_domains.get(row_key, frozenset()))

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def allocated_frames(self) -> int:
        return len(self._owner)

    def capacity_overhead(self) -> float:
        """Fraction of total frames rendered unusable by the policy so
        far (guard rows etc.) — 0.0 for policies without waste."""
        usable = self.mapper.total_frames
        unusable = sum(1 for f in range(usable) if self._blocked(f))
        return unusable / usable if usable else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _allocate_one(
        self, asid: int, avoid_rows: Optional[FrozenSet[RowKey]] = None
    ) -> int:
        fallback = None
        for frame in sorted(self._free):
            if not self._admissible(frame, asid):
                continue
            if avoid_rows and any(
                row in avoid_rows for row in self._rows_of_frame(frame)
            ):
                if fallback is None:
                    fallback = frame
                continue
            return self._take(frame, asid)
        if fallback is not None:
            return self._take(fallback, asid)
        raise OutOfMemoryError(
            f"no frame satisfies policy {self.policy.value} for ASID {asid}"
        )

    def _take(self, frame: int, asid: int) -> int:
        if self.policy is AllocationPolicy.SUBARRAY_AWARE:
            assert isinstance(self.mapper, SubarrayIsolatedInterleaving)
            self.mapper.assign_frame(frame, asid)
        self._free.discard(frame)
        self._owner[frame] = asid
        if self.policy is AllocationPolicy.BANK_PARTITION:
            for bank in self.mapper.banks_of_frame(frame):
                self._bank_owner[bank] = asid
        for row in self._rows_of_frame(frame):
            counts = self._row_domains.setdefault(row, {})
            counts[asid] = counts.get(asid, 0) + 1
        return frame

    def _admissible(self, frame: int, asid: int) -> bool:
        if self.policy is AllocationPolicy.DEFAULT:
            return True
        if self.policy is AllocationPolicy.SUBARRAY_AWARE:
            # Feasibility = the domain's group still has slots; the MC
            # enforces placement.  Probe without mutating.
            assert isinstance(self.mapper, SubarrayIsolatedInterleaving)
            group = self.mapper.group_of_domain(asid)
            if group is None:
                return True  # binding happens on first assign
            return len(self.mapper._group_slots_free[group]) > 0
        if self.policy is AllocationPolicy.BANK_PARTITION:
            return all(
                self._bank_owner.get(bank, asid) == asid
                for bank in self.mapper.banks_of_frame(frame)
            )
        if self.policy is AllocationPolicy.GUARD_ROWS:
            return self._guard_admissible(frame, asid)
        raise AssertionError(f"unhandled policy {self.policy}")

    def _guard_admissible(self, frame: int, asid: int) -> bool:
        """No row of ``frame`` may lie within ``guard_radius`` rows of a
        row holding another domain's data (same bank, same subarray)."""
        geometry = self.mapper.geometry
        for address in self.mapper.frame_addresses(frame):
            for neighbor_row in geometry.neighbors_within(
                address.row, self.guard_radius
            ):
                key = (address.channel, address.rank, address.bank, neighbor_row)
                owners = self._row_domains.get(key)
                if owners and any(owner != asid for owner in owners):
                    return False
            # Rows can be shared between frames under some mappings: the
            # frame's own rows must also not already hold foreign data.
            own_key = address.row_key()
            owners = self._row_domains.get(own_key)
            if owners and any(owner != asid for owner in owners):
                return False
        return True

    def _blocked(self, frame: int) -> bool:
        """A free frame no domain could currently claim (pure waste)."""
        if frame not in self._free:
            return False
        if self.policy is not AllocationPolicy.GUARD_ROWS:
            return False
        owners = {
            owner
            for address in self.mapper.frame_addresses(frame)
            for row in [address.row_key()]
            for owner in self._row_domains.get(row, ())
        }
        current = set(self._owner.values())
        return bool(current) and not any(
            self._guard_admissible(frame, asid) for asid in current
        )
