"""The proposed memory-controller primitives as negotiable capabilities.

§4 proposes three MC extensions (plus two optional DRAM assists).  In the
simulator they are *capability flags*: a :class:`PrimitiveSet` declares
what the simulated hardware exposes, software defenses declare what they
``require``, and attachment fails loudly when hardware support is absent.
This is what lets the harness run the paper's with/without contrast — the
same defense code either works (primitive present) or cannot even attach
(today's hardware).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable


class Primitive(enum.Enum):
    """Hardware capabilities from Table 1 of the paper."""

    #: §4.1 — MC maps each page to its domain's subarray group while
    #: still interleaving lines across banks.
    SUBARRAY_ISOLATED_INTERLEAVING = "subarray-isolated-interleaving"
    #: §4.2 — ACT_COUNT overflow interrupts report the triggering
    #: physical address (legacy counters exist either way; this flag is
    #: the *precision*).
    PRECISE_ACT_INTERRUPT = "precise-act-interrupt"
    #: §4.2 — uncore (MC-buffer) line move, for cheap aggressor remapping.
    UNCORE_MOVE = "uncore-move"
    #: §4.2 — LLC line/way locking (already present on many ARM parts).
    CACHE_LINE_LOCKING = "cache-line-locking"
    #: §4.3 — host-privileged ``refresh(va, ap)`` instruction.
    REFRESH_INSTRUCTION = "refresh-instruction"
    #: §4.3 — optional DRAM assistance: REF_NEIGHBORS(row, b) command.
    REF_NEIGHBORS_COMMAND = "ref-neighbors-command"
    #: §4.1 — optional DRAM assistance: vendor exposes internal subarray
    #: mappings (otherwise software infers them by hammer templating).
    SUBARRAY_MAP_DISCLOSURE = "subarray-map-disclosure"


class MissingPrimitiveError(Exception):
    """A defense required a primitive the hardware does not expose."""

    def __init__(self, missing: Iterable[Primitive]) -> None:
        names = ", ".join(sorted(p.value for p in missing))
        super().__init__(f"hardware lacks required primitive(s): {names}")
        self.missing = frozenset(missing)


@dataclass(frozen=True)
class PrimitiveSet:
    """What one simulated platform exposes."""

    available: FrozenSet[Primitive] = frozenset()

    @classmethod
    def none(cls) -> "PrimitiveSet":
        """Today's commodity hardware: none of the proposed primitives.
        (Imprecise ACT counting exists but reports no address.)"""
        return cls(frozenset())

    @classmethod
    def proposed(cls) -> "PrimitiveSet":
        """The paper's proposal: all three MC primitives plus the CPU-side
        helpers, without any DRAM cooperation (§4's stated deployment
        point — CPU vendors act alone)."""
        return cls(
            frozenset(
                {
                    Primitive.SUBARRAY_ISOLATED_INTERLEAVING,
                    Primitive.PRECISE_ACT_INTERRUPT,
                    Primitive.UNCORE_MOVE,
                    Primitive.CACHE_LINE_LOCKING,
                    Primitive.REFRESH_INSTRUCTION,
                }
            )
        )

    @classmethod
    def ideal(cls) -> "PrimitiveSet":
        """The long-term world of §5: CPU primitives plus DRAM-vendor
        cooperation (REF_NEIGHBORS, disclosed subarray maps)."""
        return cls(frozenset(Primitive))

    def with_(self, *primitives: Primitive) -> "PrimitiveSet":
        return replace(self, available=self.available | frozenset(primitives))

    def without(self, *primitives: Primitive) -> "PrimitiveSet":
        return replace(self, available=self.available - frozenset(primitives))

    def has(self, primitive: Primitive) -> bool:
        return primitive in self.available

    def require(self, *primitives: Primitive) -> None:
        """Raise :class:`MissingPrimitiveError` unless all are present."""
        missing = frozenset(primitives) - self.available
        if missing:
            raise MissingPrimitiveError(missing)
