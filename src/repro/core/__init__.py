"""The paper's core contribution as code: the mitigation taxonomy and
the proposed memory-controller primitives."""

from repro.core.primitives import (
    MissingPrimitiveError,
    Primitive,
    PrimitiveSet,
)
from repro.core.taxonomy import (
    TABLE_1,
    AttackCondition,
    DefenseTraits,
    MitigationClass,
)

__all__ = [
    "AttackCondition",
    "DefenseTraits",
    "MissingPrimitiveError",
    "MitigationClass",
    "Primitive",
    "PrimitiveSet",
    "TABLE_1",
]
