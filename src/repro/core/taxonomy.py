"""The paper's novel taxonomy of Rowhammer mitigations (§2.2).

A Rowhammer attack needs three conditions simultaneously:

1. **Proximity** — at least one victim row lies within the blast radius
   of at least one aggressor row;
2. **Frequency** — some aggressor is activated more than MAC times within
   a refresh interval;
3. **Staleness** — the victim is not refreshed before the aggressor
   surpasses the MAC.

Each viable mitigation eliminates exactly one condition, yielding the
three classes: *isolation-centric* (kill proximity), *frequency-centric*
(kill frequency), and *refresh-centric* (kill staleness).  This module
encodes the taxonomy as data so defenses can declare their class, the
harness can audit which condition each defense removed, and experiment E4
can verify the classification is exhaustive and correct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class AttackCondition(enum.Enum):
    """The three necessary conditions of a Rowhammer attack (§2.2)."""

    PROXIMITY = "proximity"  # victim within blast radius of an aggressor
    FREQUENCY = "frequency"  # aggressor ACTs exceed MAC within a window
    STALENESS = "staleness"  # victim not refreshed before MAC exceeded


class MitigationClass(enum.Enum):
    """The paper's three mitigation classes, one per condition."""

    ISOLATION = "isolation-centric"
    FREQUENCY = "frequency-centric"
    REFRESH = "refresh-centric"

    @property
    def eliminates(self) -> AttackCondition:
        """Which attack condition this class removes."""
        return _CLASS_TO_CONDITION[self]

    @classmethod
    def for_condition(cls, condition: AttackCondition) -> "MitigationClass":
        """The class that eliminates ``condition``."""
        return _CONDITION_TO_CLASS[condition]


_CLASS_TO_CONDITION: Dict[MitigationClass, AttackCondition] = {
    MitigationClass.ISOLATION: AttackCondition.PROXIMITY,
    MitigationClass.FREQUENCY: AttackCondition.FREQUENCY,
    MitigationClass.REFRESH: AttackCondition.STALENESS,
}
_CONDITION_TO_CLASS = {v: k for k, v in _CLASS_TO_CONDITION.items()}


@dataclass(frozen=True)
class DefenseTraits:
    """Static classification of one defense implementation.

    ``stops_cross_domain`` / ``stops_intra_domain``: whether the defense,
    working as designed, prevents flips across / within trust domains.
    §2.2 notes isolation-centric defenses typically do *not* stop
    intra-domain disturbance — the taxonomy audit (E4) checks exactly
    this distinction.

    ``covers_dma``: whether the defense observes DMA-induced ACTs.  The
    paper's motivating flaw in ANVIL (§1) is ``covers_dma=False``.

    ``location``: where the mechanism lives ("dram", "mc", "software").
    The paper's thesis is that "software" entries below are only possible
    given the corresponding MC primitive.
    """

    mitigation_class: MitigationClass
    location: str
    stops_cross_domain: bool = True
    stops_intra_domain: bool = True
    covers_dma: bool = True
    scales_with_density: bool = True

    def __post_init__(self) -> None:
        if self.location not in ("dram", "mc", "software"):
            raise ValueError(f"unknown location {self.location!r}")

    @property
    def eliminated_condition(self) -> AttackCondition:
        return self.mitigation_class.eliminates


#: The paper's Table 1, as data: mitigation class → (MC primitive,
#: software defense(s), optional DRAM assistance).
TABLE_1: Tuple[Tuple[MitigationClass, str, Tuple[str, ...], str], ...] = (
    (
        MitigationClass.ISOLATION,
        "Subarray-isolated interleaving",
        ("Subarray-aware memory allocation",),
        "Internal subarray mappings",
    ),
    (
        MitigationClass.FREQUENCY,
        "Precise ACT interrupt event",
        ("Aggressor remapping", "Cache line locking"),
        "-",
    ),
    (
        MitigationClass.REFRESH,
        "CPU refresh instruction",
        ("Efficient software refresh of victim rows",),
        "REF_NEIGHBORS command",
    ),
)
