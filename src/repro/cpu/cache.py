"""A set-associative last-level cache with way/line locking.

Two roles in the reproduction:

* the normal request path — core loads/stores hit or miss here, and only
  misses/writebacks reach the memory controller (the indirection that
  makes software row refresh "convoluted", §4.3);
* the *cache-line locking* defense substrate (§4.2): the host OS can pin
  a hot line into reserved ways so it stops generating ACTs for the rest
  of the refresh interval.  Locked lines are exempt from replacement; a
  cap on locked ways bounds how much associativity the defense may steal.

The model is physically indexed by cache-line number, write-back,
write-allocate, with LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True, slots=True)
class CacheAccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: line that must be fetched from memory (the missed line), or None
    fill_line: Optional[int]
    #: dirty line evicted by the fill and needing writeback, or None
    writeback_line: Optional[int]
    #: the access was absorbed by a *locked* line
    served_by_locked: bool = False


# Hit outcomes carry no per-access data, so the two possible values are
# shared singletons — the hit path allocates nothing.
_HIT = CacheAccessResult(hit=True, fill_line=None, writeback_line=None)
_LOCKED_HIT = CacheAccessResult(
    hit=True, fill_line=None, writeback_line=None, served_by_locked=True
)


class LockError(Exception):
    """Raised when a line cannot be (un)locked."""


class SetAssociativeCache:
    """LRU set-associative cache over physical cache-line indices."""

    def __init__(
        self,
        sets: int = 256,
        ways: int = 8,
        max_locked_ways: int = 2,
    ) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("sets and ways must be >= 1")
        if not 0 <= max_locked_ways < ways:
            raise ValueError("max_locked_ways must leave at least one normal way")
        self.sets = sets
        self.ways = ways
        self.max_locked_ways = max_locked_ways
        # per set: line -> dirty flag, in LRU order (oldest first)
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(sets)
        ]
        self._locked: Set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.locked_hits = 0
        #: hits served through :meth:`access_bulk` (subset of ``hits``);
        #: surfaces as the ``cache.l2.bulk_hits`` gauge so the columnar
        #: front end's cache traffic is distinguishable from scalar
        self.bulk_hits = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def set_of(self, line: int) -> int:
        return line % self.sets

    def access(self, line: int, is_write: bool = False) -> CacheAccessResult:
        """Look up ``line``; on miss, choose a victim and report the fill
        and any writeback the caller must perform."""
        if line < 0:
            raise ValueError("line must be >= 0")
        cache_set = self._sets[line % self.sets]
        if line in cache_set:
            self.hits += 1
            if is_write and not cache_set[line]:
                cache_set[line] = True
            cache_set.move_to_end(line)  # MRU
            if line in self._locked:
                self.locked_hits += 1
                return _LOCKED_HIT
            return _HIT
        self.misses += 1
        writeback = self._make_room(cache_set)
        cache_set[line] = is_write
        return CacheAccessResult(hit=False, fill_line=line, writeback_line=writeback)

    def access_bulk(self, lines, writes=None) -> List[Tuple[int, Optional[int]]]:
        """Access a whole column of lines, filtering the hits out.

        Counter-exact twin of calling :meth:`access` per element in
        column order (same LRU promotions, same victim choices, same
        dirty transitions), but hits — the overwhelmingly common case on
        the steady-state paths that batch — are accrued in bulk locals
        and produce no per-access result objects.  Only the misses come
        back, as ``(position, writeback_line)`` pairs in access order:
        ``position`` indexes into ``lines`` and ``writeback_line`` is the
        dirty victim the caller must write back (or ``None``).  ``writes``
        is an optional parallel int8/bool column; omitted means all
        reads.  Hits served here are additionally counted in
        :attr:`bulk_hits` (the ``cache.l2.bulk_hits`` gauge).
        """
        sets_list = self._sets
        nsets = self.sets
        locked = self._locked
        hits = 0
        locked_hits = 0
        misses: List[Tuple[int, Optional[int]]] = []
        for position in range(len(lines)):
            line = lines[position]
            if line < 0:
                raise ValueError("line must be >= 0")
            cache_set = sets_list[line % nsets]
            is_write = bool(writes[position]) if writes is not None else False
            if line in cache_set:
                hits += 1
                if is_write and not cache_set[line]:
                    cache_set[line] = True
                cache_set.move_to_end(line)
                if line in locked:
                    locked_hits += 1
                continue
            self.misses += 1
            writeback = self._make_room(cache_set)
            cache_set[line] = is_write
            misses.append((position, writeback))
        self.hits += hits
        self.locked_hits += locked_hits
        self.bulk_hits += hits
        return misses

    def flush(self, line: int) -> Optional[int]:
        """clflush: drop ``line``; returns the line if a dirty writeback
        is needed.  Flushing a locked line is refused (the lock defense
        must hold against attacker flushes of *its own* lines only —
        flush is modelled per-domain at the core layer)."""
        if line in self._locked:
            raise LockError(f"line {line} is locked and cannot be flushed")
        cache_set = self._sets[self.set_of(line)]
        if line not in cache_set:
            return None
        dirty = cache_set.pop(line)
        if dirty:
            self.writebacks += 1
            return line
        return None

    def contains(self, line: int) -> bool:
        return line in self._sets[self.set_of(line)]

    # ------------------------------------------------------------------
    # Locking (the §4.2 defense hook)
    # ------------------------------------------------------------------

    def lock(self, line: int) -> Optional[int]:
        """Pin ``line`` into its set.  Inserts it if absent (returns a
        writeback line if the insertion evicts dirty data).  Raises
        :class:`LockError` when the set's locked-way budget is exhausted
        — the "way(s) become full" fallback condition of §4.2."""
        cache_set = self._sets[self.set_of(line)]
        locked_here = sum(1 for cached in cache_set if cached in self._locked)
        if line not in self._locked and locked_here >= self.max_locked_ways:
            raise LockError(
                f"set {self.set_of(line)} already has {locked_here} locked "
                f"ways (budget {self.max_locked_ways})"
            )
        writeback = None
        if line not in cache_set:
            writeback = self._make_room(cache_set)
            cache_set[line] = False
        self._locked.add(line)
        return writeback

    def unlock(self, line: int) -> None:
        self._locked.discard(line)

    def unlock_all(self) -> None:
        self._locked.clear()

    def is_locked(self, line: int) -> bool:
        return line in self._locked

    def locked_lines(self) -> Set[int]:
        return set(self._locked)

    def locked_ways_in_set(self, set_index: int) -> int:
        return sum(1 for line in self._sets[set_index] if line in self._locked)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _make_room(self, cache_set: "OrderedDict[int, bool]") -> Optional[int]:
        """Evict the LRU unlocked entry if the set is full; returns the
        evicted line when it was dirty (needs writeback)."""
        if len(cache_set) < self.ways:
            return None
        for victim in cache_set:  # oldest first
            if victim not in self._locked:
                dirty = cache_set.pop(victim)
                self.evictions += 1
                if dirty:
                    self.writebacks += 1
                    return victim
                return None
        raise LockError("all ways in the set are locked; cannot evict")
