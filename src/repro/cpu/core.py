"""The core-side memory path: loads/stores through the LLC to the MC.

This is the indirection §4.3 complains about: software cannot issue DRAM
commands; it can only execute loads/stores which *may* miss the cache and
*may* cause the controller to activate a row.  ``Core.load/store`` model
that path faithfully — including ``clflush`` + fence, the contortion a
software-only refresh (or an attacker) needs to force misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.cache import LockError, SetAssociativeCache
from repro.cpu.mmu import Mmu
from repro.mc.controller import CompletedRequest, MemoryController, MemoryRequest

#: Latency of an LLC hit, ns (order-of-magnitude realistic; only ratios
#: against DRAM latencies matter).
LLC_HIT_LATENCY_NS = 12


@dataclass(slots=True)
class AccessOutcome:
    """Result of one core load/store.  Immutable by convention, not
    frozen — frozen slots dataclasses construct ~2x slower, and one of
    these is allocated per load/store."""

    done_at_ns: int
    cache_hit: bool
    served_by_locked: bool
    memory: Optional[CompletedRequest]  # None when the LLC absorbed it


class Core:
    """A simple core front-end: translate, probe LLC, miss to memory."""

    def __init__(
        self,
        mmu: Mmu,
        cache: SetAssociativeCache,
        controller: MemoryController,
    ) -> None:
        self.mmu = mmu
        self.cache = cache
        self.controller = controller
        self.loads = 0
        self.stores = 0
        self.flushes = 0
        self.blocked_flushes = 0

    # ------------------------------------------------------------------
    # Loads / stores (virtual addressing, per-domain)
    # ------------------------------------------------------------------

    def load(self, asid: int, virtual_line: int, now: int) -> AccessOutcome:
        self.loads += 1
        return self._access(asid, virtual_line, now, is_write=False)

    def store(self, asid: int, virtual_line: int, now: int) -> AccessOutcome:
        self.stores += 1
        return self._access(asid, virtual_line, now, is_write=True)

    def flush(self, asid: int, virtual_line: int, now: int) -> int:
        """clflush: evict the line from the LLC, writing back if dirty.
        Returns completion time.  This is how attackers (and the clumsy
        software-refresh path) guarantee their next access reaches DRAM."""
        self.flushes += 1
        physical = self.mmu.translate_line(asid, virtual_line)
        try:
            writeback = self.cache.flush(physical)
        except LockError:
            # The line is pinned by the locking defense (§4.2): the flush
            # has no architectural effect and the next load will hit.
            self.blocked_flushes += 1
            return now + 1
        if writeback is not None:
            completed = self.controller.submit(
                MemoryRequest(
                    time_ns=now,
                    physical_line=writeback,
                    is_write=True,
                    domain=asid,
                )
            )
            return completed.ready_at_ns
        return now + 1  # flush of a clean/absent line is ~free

    def hammer_access(self, asid: int, virtual_line: int, now: int) -> AccessOutcome:
        """flush + fence + load: the canonical hammering access that
        forces a DRAM row activation on every iteration.

        Translates once and reuses the physical line for both halves;
        a real core would likewise hold the translation across the
        fenced pair."""
        self.flushes += 1
        physical = self.mmu.translate_line(asid, virtual_line)
        try:
            writeback = self.cache.flush(physical)
        except LockError:
            self.blocked_flushes += 1
            writeback = None
            after_flush = now + 1
        else:
            if writeback is not None:
                after_flush = self.controller.submit(
                    MemoryRequest(
                        time_ns=now,
                        physical_line=writeback,
                        is_write=True,
                        domain=asid,
                    )
                ).ready_at_ns
            else:
                after_flush = now + 1
        self.loads += 1
        result = self.cache.access(physical, is_write=False)
        if result.hit:
            return AccessOutcome(
                done_at_ns=after_flush + LLC_HIT_LATENCY_NS,
                cache_hit=True,
                served_by_locked=result.served_by_locked,
                memory=None,
            )
        when = after_flush
        if result.writeback_line is not None:
            when = self.controller.submit(
                MemoryRequest(
                    time_ns=when,
                    physical_line=result.writeback_line,
                    is_write=True,
                    domain=asid,
                )
            ).ready_at_ns
        completed = self.controller.submit(
            MemoryRequest(
                time_ns=when,
                physical_line=physical,
                is_write=False,
                domain=asid,
            )
        )
        return AccessOutcome(
            done_at_ns=completed.ready_at_ns + LLC_HIT_LATENCY_NS,
            cache_hit=False,
            served_by_locked=False,
            memory=completed,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _access(
        self, asid: int, virtual_line: int, now: int, is_write: bool
    ) -> AccessOutcome:
        physical = self.mmu.translate_line(asid, virtual_line)
        result = self.cache.access(physical, is_write=is_write)
        if result.hit:
            return AccessOutcome(
                done_at_ns=now + LLC_HIT_LATENCY_NS,
                cache_hit=True,
                served_by_locked=result.served_by_locked,
                memory=None,
            )
        when = now
        if result.writeback_line is not None:
            written = self.controller.submit(
                MemoryRequest(
                    time_ns=when,
                    physical_line=result.writeback_line,
                    is_write=True,
                    domain=asid,
                )
            )
            when = written.ready_at_ns
        completed = self.controller.submit(
            MemoryRequest(
                time_ns=when,
                physical_line=physical,
                is_write=is_write,
                domain=asid,
            )
        )
        return AccessOutcome(
            done_at_ns=completed.ready_at_ns + LLC_HIT_LATENCY_NS,
            cache_hit=False,
            served_by_locked=False,
            memory=completed,
        )
