"""CPU-side substrate: LLC with line locking, MMU/TLB, the proposed ISA
surface (refresh instruction, uncore move), and a cache-bypassing DMA
engine."""

from repro.cpu.cache import (
    CacheAccessResult,
    LockError,
    SetAssociativeCache,
)
from repro.cpu.core import LLC_HIT_LATENCY_NS, AccessOutcome, Core
from repro.cpu.dma import DmaEngine
from repro.cpu.isa import (
    ExecutionContext,
    IllegalInstructionError,
    IsaSurface,
    PrivilegeFaultError,
)
from repro.cpu.mmu import Mmu, PageMapping, PageTable, Tlb, TranslationError

__all__ = [
    "AccessOutcome",
    "CacheAccessResult",
    "Core",
    "DmaEngine",
    "ExecutionContext",
    "IllegalInstructionError",
    "IsaSurface",
    "LLC_HIT_LATENCY_NS",
    "LockError",
    "Mmu",
    "PageMapping",
    "PageTable",
    "PrivilegeFaultError",
    "SetAssociativeCache",
    "Tlb",
    "TranslationError",
]
