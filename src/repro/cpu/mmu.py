"""Per-domain virtual memory: page tables and an ASID-tagged TLB.

The paper's primitives are specified against *virtual* addresses at the
ISA surface (the ``refresh`` instruction takes a ``va``, §4.3) and against
trust domains identified by ASIDs (§4.1 suggests coordinating domain ↔
subarray-group mappings via ASID tags "akin to those already used in the
TLB").  This module provides both: per-domain page tables mapping virtual
page numbers to physical frames, and a small ASID-tagged TLB whose reach
is irrelevant to security but keeps the model honest about translation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


class TranslationError(Exception):
    """Raised on access to an unmapped virtual page."""


@dataclass(frozen=True)
class PageMapping:
    """One virtual→physical page mapping."""

    virtual_page: int
    frame: int
    writable: bool = True


class PageTable:
    """One domain's virtual→physical map (single-level, page granular)."""

    def __init__(self, asid: int) -> None:
        self.asid = asid
        self._map: Dict[int, PageMapping] = {}

    def map(self, virtual_page: int, frame: int, writable: bool = True) -> None:
        if virtual_page < 0 or frame < 0:
            raise ValueError("virtual_page and frame must be >= 0")
        if virtual_page in self._map:
            raise ValueError(f"virtual page {virtual_page} already mapped")
        self._map[virtual_page] = PageMapping(virtual_page, frame, writable)

    def remap(self, virtual_page: int, new_frame: int) -> int:
        """Point ``virtual_page`` at ``new_frame`` (used by the aggressor
        wear-leveling defense, §4.2).  Returns the old frame."""
        old = self._map.get(virtual_page)
        if old is None:
            raise TranslationError(f"virtual page {virtual_page} not mapped")
        self._map[virtual_page] = PageMapping(
            virtual_page, new_frame, old.writable
        )
        return old.frame

    def unmap(self, virtual_page: int) -> int:
        old = self._map.pop(virtual_page, None)
        if old is None:
            raise TranslationError(f"virtual page {virtual_page} not mapped")
        return old.frame

    def translate(self, virtual_page: int) -> PageMapping:
        mapping = self._map.get(virtual_page)
        if mapping is None:
            raise TranslationError(
                f"ASID {self.asid}: virtual page {virtual_page} not mapped"
            )
        return mapping

    def mappings(self) -> Iterator[PageMapping]:
        return iter(self._map.values())

    def frames(self) -> Iterator[int]:
        for mapping in self._map.values():
            yield mapping.frame

    def __len__(self) -> int:
        return len(self._map)


class Tlb:
    """ASID-tagged LRU TLB over (asid, virtual_page) → frame."""

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.capacity = entries
        self._entries: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, asid: int, virtual_page: int) -> Optional[int]:
        key = (asid, virtual_page)
        frame = self._entries.get(key)
        if frame is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return frame

    def fill(self, asid: int, virtual_page: int, frame: int) -> None:
        key = (asid, virtual_page)
        self._entries[key] = frame
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, asid: int, virtual_page: Optional[int] = None) -> None:
        """Shoot down one page of one ASID, or the whole ASID."""
        if virtual_page is not None:
            self._entries.pop((asid, virtual_page), None)
            return
        for key in [k for k in self._entries if k[0] == asid]:
            del self._entries[key]


class Mmu:
    """Translation front-end shared by all cores: per-ASID page tables
    plus one TLB.  Addresses are line-granular throughout the simulator;
    ``lines_per_page`` converts between lines and pages."""

    def __init__(self, lines_per_page: int = 64, tlb_entries: int = 64) -> None:
        if lines_per_page < 1:
            raise ValueError("lines_per_page must be >= 1")
        self.lines_per_page = lines_per_page
        self.tlb = Tlb(tlb_entries)
        self._tables: Dict[int, PageTable] = {}

    def table(self, asid: int) -> PageTable:
        if asid not in self._tables:
            self._tables[asid] = PageTable(asid)
        return self._tables[asid]

    def translate_line(self, asid: int, virtual_line: int) -> int:
        """Translate a virtual cache-line index to a physical one."""
        lines_per_page = self.lines_per_page
        virtual_page = virtual_line // lines_per_page
        offset = virtual_line - virtual_page * lines_per_page
        # Inlined TLB hit path (this is the hottest translation route).
        tlb = self.tlb
        key = (asid, virtual_page)
        frame = tlb._entries.get(key)
        if frame is None:
            tlb.misses += 1
            mapping = self.table(asid).translate(virtual_page)
            frame = mapping.frame
            tlb.fill(asid, virtual_page, frame)
        else:
            tlb.hits += 1
            tlb._entries.move_to_end(key)
        return frame * lines_per_page + offset

    def remap_page(self, asid: int, virtual_page: int, new_frame: int) -> int:
        """Move a page to a new frame and shoot down the stale TLB entry.
        Returns the old frame."""
        old = self.table(asid).remap(virtual_page, new_frame)
        self.tlb.invalidate(asid, virtual_page)
        return old

    def reverse_lookup(self, frame: int) -> Optional[Tuple[int, int]]:
        """Find which (asid, virtual_page) currently maps ``frame``."""
        for asid, table in self._tables.items():
            for mapping in table.mappings():
                if mapping.frame == frame:
                    return asid, mapping.virtual_page
        return None
