"""Per-domain virtual memory: page tables and an ASID-tagged TLB.

The paper's primitives are specified against *virtual* addresses at the
ISA surface (the ``refresh`` instruction takes a ``va``, §4.3) and against
trust domains identified by ASIDs (§4.1 suggests coordinating domain ↔
subarray-group mappings via ASID tags "akin to those already used in the
TLB").  This module provides both: per-domain page tables mapping virtual
page numbers to physical frames, and a small ASID-tagged TLB whose reach
is irrelevant to security but keeps the model honest about translation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

try:  # numpy powers the bulk translation plan; scalar paths run without it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image ships numpy
    _np = None


class TranslationError(Exception):
    """Raised on access to an unmapped virtual page."""


@dataclass(frozen=True)
class PageMapping:
    """One virtual→physical page mapping."""

    virtual_page: int
    frame: int
    writable: bool = True


class PageTable:
    """One domain's virtual→physical map (single-level, page granular)."""

    def __init__(self, asid: int) -> None:
        self.asid = asid
        self._map: Dict[int, PageMapping] = {}
        #: bumped on every map/remap/unmap; chunk-granular translation
        #: plans (:class:`TranslationPlan`) compare it to detect that a
        #: cached frame column went stale mid-run
        self.version = 0

    def map(self, virtual_page: int, frame: int, writable: bool = True) -> None:
        if virtual_page < 0 or frame < 0:
            raise ValueError("virtual_page and frame must be >= 0")
        if virtual_page in self._map:
            raise ValueError(f"virtual page {virtual_page} already mapped")
        self._map[virtual_page] = PageMapping(virtual_page, frame, writable)
        self.version += 1

    def remap(self, virtual_page: int, new_frame: int) -> int:
        """Point ``virtual_page`` at ``new_frame`` (used by the aggressor
        wear-leveling defense, §4.2).  Returns the old frame."""
        old = self._map.get(virtual_page)
        if old is None:
            raise TranslationError(f"virtual page {virtual_page} not mapped")
        self._map[virtual_page] = PageMapping(
            virtual_page, new_frame, old.writable
        )
        self.version += 1
        return old.frame

    def unmap(self, virtual_page: int) -> int:
        old = self._map.pop(virtual_page, None)
        if old is None:
            raise TranslationError(f"virtual page {virtual_page} not mapped")
        self.version += 1
        return old.frame

    def translate(self, virtual_page: int) -> PageMapping:
        mapping = self._map.get(virtual_page)
        if mapping is None:
            raise TranslationError(
                f"ASID {self.asid}: virtual page {virtual_page} not mapped"
            )
        return mapping

    def mappings(self) -> Iterator[PageMapping]:
        return iter(self._map.values())

    def frames(self) -> Iterator[int]:
        for mapping in self._map.values():
            yield mapping.frame

    def __len__(self) -> int:
        return len(self._map)


class Tlb:
    """ASID-tagged LRU TLB over (asid, virtual_page) → frame."""

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.capacity = entries
        self._entries: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, asid: int, virtual_page: int) -> Optional[int]:
        key = (asid, virtual_page)
        frame = self._entries.get(key)
        if frame is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return frame

    def fill(self, asid: int, virtual_page: int, frame: int) -> None:
        key = (asid, virtual_page)
        self._entries[key] = frame
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, asid: int, virtual_page: Optional[int] = None) -> None:
        """Shoot down one page of one ASID, or the whole ASID."""
        if virtual_page is not None:
            self._entries.pop((asid, virtual_page), None)
            return
        for key in [k for k in self._entries if k[0] == asid]:
            del self._entries[key]


class Mmu:
    """Translation front-end shared by all cores: per-ASID page tables
    plus one TLB.  Addresses are line-granular throughout the simulator;
    ``lines_per_page`` converts between lines and pages."""

    def __init__(self, lines_per_page: int = 64, tlb_entries: int = 64) -> None:
        if lines_per_page < 1:
            raise ValueError("lines_per_page must be >= 1")
        self.lines_per_page = lines_per_page
        self.tlb = Tlb(tlb_entries)
        self._tables: Dict[int, PageTable] = {}

    def table(self, asid: int) -> PageTable:
        if asid not in self._tables:
            self._tables[asid] = PageTable(asid)
        return self._tables[asid]

    def translate_line(self, asid: int, virtual_line: int) -> int:
        """Translate a virtual cache-line index to a physical one."""
        lines_per_page = self.lines_per_page
        virtual_page = virtual_line // lines_per_page
        offset = virtual_line - virtual_page * lines_per_page
        # Inlined TLB hit path (this is the hottest translation route).
        tlb = self.tlb
        key = (asid, virtual_page)
        frame = tlb._entries.get(key)
        if frame is None:
            tlb.misses += 1
            mapping = self.table(asid).translate(virtual_page)
            frame = mapping.frame
            tlb.fill(asid, virtual_page, frame)
        else:
            tlb.hits += 1
            tlb._entries.move_to_end(key)
        return frame * lines_per_page + offset

    def remap_page(self, asid: int, virtual_page: int, new_frame: int) -> int:
        """Move a page to a new frame and shoot down the stale TLB entry.
        Returns the old frame."""
        old = self.table(asid).remap(virtual_page, new_frame)
        self.tlb.invalidate(asid, virtual_page)
        return old

    def translate_lines_bulk(self, asid: int, virtual_lines) -> "list[int]":
        """Translate a whole column of virtual line indices at once.

        Equivalent to calling :meth:`translate_line` per element — same
        physical lines, same TLB hit/miss/evict accounting, same
        :class:`TranslationError` at the first unmapped access — but the
        page split and frame gather run vectorized and the TLB is only
        walked at *page-run heads* (an access to the same page as its
        predecessor is by construction an MRU hit, so it is accrued in
        bulk without touching the LRU structure).  Returns a list of
        physical line indices.
        """
        plan = self.plan_translation(asid, virtual_lines)
        count = len(plan)
        if plan.fault_at < count:
            # Surface the fault exactly as the scalar loop would: account
            # the accesses before it, then re-raise from translate_line.
            plan.account(0, plan.fault_at)
            self.translate_line(asid, int(virtual_lines[plan.fault_at]))
            raise AssertionError("unreachable: planned fault did not raise")
        plan.account(0, count)
        return plan.physical(0, count)

    def plan_translation(self, asid: int, virtual_lines) -> "TranslationPlan":
        """Build a :class:`TranslationPlan` for a chunk of accesses (the
        columnar front end's unit of translation)."""
        if _np is None:  # pragma: no cover - numpy ships with the image
            raise RuntimeError("bulk translation requires numpy")
        return TranslationPlan(self, asid, virtual_lines)

    def reverse_lookup(self, frame: int) -> Optional[Tuple[int, int]]:
        """Find which (asid, virtual_page) currently maps ``frame``."""
        for asid, table in self._tables.items():
            for mapping in table.mappings():
                if mapping.frame == frame:
                    return asid, mapping.virtual_page
        return None


class TranslationPlan:
    """Chunk-granular vectorized translation with windowed TLB accounting.

    The columnar runners generate accesses in large chunks but *submit*
    them in MLP windows whose issue times depend on the previous window's
    completion — and a defense interrupt fired during a submit may remap
    pages (changing frames and shooting down TLB entries) between two
    windows of the same chunk.  A plan therefore splits translation into
    three independently timed pieces:

    * **frame gather** (:meth:`__init__` / :meth:`refresh`): the page
      split and page-table lookups for the whole chunk, vectorized.  The
      result is only a function of the page table, so it is computed
      upfront and recomputed from the current cursor when
      :attr:`stale` reports the table's version moved;
    * **TLB accounting** (:meth:`account`): applied window by window, in
      access order, against the *live* :class:`Tlb` — within a page run
      only the head access walks the LRU structure (misses consult the
      current page table, exactly like :meth:`Mmu.translate_line`); the
      run's tail accesses are guaranteed MRU hits and accrue in bulk.
      Counters and final TLB state are identical to the scalar loop;
    * **fault boundary** (:attr:`fault_at`): the first access whose page
      is unmapped.  Accesses past it have no valid translation; the
      caller must fall back to the scalar path for the window containing
      it so the :class:`TranslationError` surfaces at exactly the right
      access with exactly the scalar path's partial TLB state.
    """

    __slots__ = (
        "mmu", "asid", "pages", "offsets", "phys", "fault_at",
        "_table", "_version", "_heads", "_head_pos",
    )

    def __init__(self, mmu: Mmu, asid: int, virtual_lines) -> None:
        self.mmu = mmu
        self.asid = asid
        lines = _np.asarray(virtual_lines, dtype=_np.int64)
        lines_per_page = mmu.lines_per_page
        pages = lines // lines_per_page
        self.pages = pages
        self.offsets = lines - pages * lines_per_page
        self.phys = _np.empty(len(lines), dtype=_np.int64)
        self._table = mmu.table(asid)
        # page-run heads: index 0 plus every index whose page differs
        # from its predecessor (fixed for the plan's lifetime — pages
        # never change, only frames do)
        if len(pages):
            change = _np.empty(len(pages), dtype=bool)
            change[0] = True
            _np.not_equal(pages[1:], pages[:-1], out=change[1:])
            self._heads = _np.flatnonzero(change)
        else:
            self._heads = _np.empty(0, dtype=_np.int64)
        self._head_pos = 0
        self.fault_at = 0
        self._gather(0)

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def stale(self) -> bool:
        """The page table changed since the last frame gather."""
        return self._version != self._table.version

    def refresh(self, start: int) -> None:
        """Re-gather frames for accesses ``start`` onward against the
        current page table (after a mid-chunk remap)."""
        self._gather(start)

    def _gather(self, start: int) -> None:
        table_map = self._table._map
        pages = self.pages[start:]
        if not len(pages):
            self.fault_at = max(self.fault_at, len(self.pages))
            self._version = self._table.version
            return
        unique, inverse = _np.unique(pages, return_inverse=True)
        frames = _np.empty(len(unique), dtype=_np.int64)
        for index, page in enumerate(unique.tolist()):
            mapping = table_map.get(page)
            frames[index] = -1 if mapping is None else mapping.frame
        frame_col = frames[inverse]
        lines_per_page = self.mmu.lines_per_page
        self.phys[start:] = frame_col * lines_per_page + self.offsets[start:]
        faults = _np.flatnonzero(frame_col < 0)
        self.fault_at = (
            start + int(faults[0]) if len(faults) else len(self.pages)
        )
        self._version = self._table.version

    def physical(self, start: int, stop: int):
        """The translated physical-line slice ``[start, stop)`` as a list
        of plain ints (all below :attr:`fault_at`)."""
        return self.phys[start:stop].tolist()

    def physical_bytes(self, start: int, stop: int) -> bytes:
        """The slice ``[start, stop)`` as raw int64 bytes, ready for
        ``array('q').frombytes`` column fills."""
        return self.phys[start:stop].tobytes()

    def account(self, start: int, stop: int) -> None:
        """Apply exact TLB accounting for accesses ``[start, stop)``.

        Must be called in order, once per window (``start`` equal to the
        previous call's ``stop``), before the window is submitted —
        that keeps the hit/miss/evict sequence identical to per-access
        :meth:`Mmu.translate_line` even when a defense shoots down
        entries between windows.
        """
        if stop <= start:
            return
        heads = self._heads
        position = self._head_pos
        end = len(heads)
        tlb = self.mmu.tlb
        entries = tlb._entries
        move_to_end = entries.move_to_end
        get = entries.get
        fill = tlb.fill
        table = self._table
        asid = self.asid
        pages = self.pages
        head_count = 0
        hits = 0
        # A window may open mid-run: its first access continues the
        # previous window's page run.  That entry was MRU when the
        # previous window was accounted, but a shootdown between the two
        # windows may have removed it — look the page up for real
        # instead of assuming the hit (exact vs the scalar loop either
        # way: when nothing was shot down the entry is still MRU and the
        # lookup is the same hit the tail accrual would have counted).
        first_head = int(heads[position]) if position < end else len(pages)
        if start < first_head:
            page = int(pages[start])
            key = (asid, page)
            frame = get(key)
            if frame is None:
                tlb.misses += 1
                fill(asid, page, table.translate(page).frame)
            else:
                hits += 1
                move_to_end(key)
            head_count += 1
        while position < end:
            index = int(heads[position])
            if index >= stop:
                break
            head_count += 1
            position += 1
            page = int(pages[index])
            key = (asid, page)
            frame = get(key)
            if frame is None:
                tlb.misses += 1
                fill(asid, page, table.translate(page).frame)
            else:
                hits += 1
                move_to_end(key)
        self._head_pos = position
        # run tails: guaranteed MRU hits, accrued without LRU traffic
        tlb.hits += hits + (stop - start) - head_count
