"""A DMA engine: device traffic that bypasses cores, caches, and core
performance counters.

§1 singles out DMA-based Rowhammer (Throwhammer/Nethammer/GuardION-class
attacks) as the blind spot of counter-based software defenses: ANVIL
watches core performance counters, and DMA transfers never touch them.
The MC, by contrast, sees every ACT regardless of origin — which is why
the paper puts its counters there (§4.2).

``DmaEngine`` issues line requests straight to the controller with
``is_dma=True``.  Core PMU emulation (what ANVIL sees) simply never hears
about these requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mc.controller import CompletedRequest, MemoryController, MemoryRequest


class DmaEngine:
    """One bus-mastering device (NIC, GPU, FPGA...) owned by a domain.

    The owning domain matters for attribution: a tenant can direct its
    device's transfers at its own buffers whose DRAM rows neighbour a
    victim's rows — hammering without ever executing a load.
    """

    def __init__(self, controller: MemoryController, domain: Optional[int] = None) -> None:
        self.controller = controller
        self.domain = domain
        self.transfers = 0

    def transfer(
        self, physical_line: int, now: int, is_write: bool = False
    ) -> CompletedRequest:
        """One line-sized device transfer, uncached by construction."""
        self.transfers += 1
        return self.controller.submit(
            MemoryRequest(
                time_ns=now,
                physical_line=physical_line,
                is_write=is_write,
                domain=self.domain,
                is_dma=True,
            )
        )

    def burst(
        self, first_line: int, count: int, now: int, is_write: bool = False
    ) -> int:
        """A contiguous multi-line transfer; returns completion time."""
        if count < 1:
            raise ValueError("count must be >= 1")
        when = now
        for offset in range(count):
            completed = self.transfer(first_line + offset, when, is_write)
            when = completed.ready_at_ns
        return when
