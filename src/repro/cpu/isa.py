"""The ISA surface of the proposed primitives (§4.2–4.3).

``IsaSurface`` is what host-OS (and, in enclave mode, enclave) software
actually executes.  Each proposed instruction checks two things before
doing anything, in this order:

1. the simulated hardware exposes the primitive (:class:`PrimitiveSet`),
   else ``IllegalInstructionError`` — running the paper's software on
   today's hardware must fail loudly, not silently no-op;
2. the executing context is privileged where the paper requires it
   (``refresh`` is host-privileged because its ACT side effect could
   itself be abused to hammer, §4.3), else ``PrivilegeFaultError``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.primitives import Primitive, PrimitiveSet
from repro.cpu.mmu import Mmu
from repro.mc.controller import MemoryController


class IllegalInstructionError(Exception):
    """The hardware does not implement this instruction."""


class PrivilegeFaultError(Exception):
    """The executing context lacks the privilege the instruction needs."""


@dataclass(frozen=True)
class ExecutionContext:
    """Who is executing: a trust domain plus its privilege level.

    ``host=True`` models the host OS / hypervisor (ring -1..0).
    ``enclave_refresh_grant=True`` models §4.4's relaxation: an enclave
    may issue ``refresh`` to addresses inside its own, subarray-isolated
    address space.
    """

    asid: int
    host: bool = False
    enclave_refresh_grant: bool = False


class IsaSurface:
    """Instruction implementations bridging MMU and memory controller."""

    def __init__(
        self,
        mmu: Mmu,
        controller: MemoryController,
        primitives: PrimitiveSet,
    ) -> None:
        self.mmu = mmu
        self.controller = controller
        self.primitives = primitives
        self.refreshes_executed = 0
        self.moves_executed = 0

    # ------------------------------------------------------------------
    # refresh va, ap  (§4.3)
    # ------------------------------------------------------------------

    def refresh(
        self,
        context: ExecutionContext,
        virtual_line: int,
        now: int,
        auto_precharge: bool = True,
    ) -> int:
        """Refresh the DRAM row backing ``virtual_line``.

        Implemented exactly as §4.3 specifies: TLB translates va→pa, the
        MC converts pa to a row, then PRE + ACT (+PRE when ``ap``).
        Host-privileged; enclaves may hold a grant (§4.4).  Returns the
        completion time.
        """
        if not self.primitives.has(Primitive.REFRESH_INSTRUCTION):
            raise IllegalInstructionError("refresh instruction not implemented")
        if not (context.host or context.enclave_refresh_grant):
            raise PrivilegeFaultError("refresh is host-privileged (§4.3)")
        physical_line = self.mmu.translate_line(context.asid, virtual_line)
        done = self.controller.refresh_line(
            physical_line, now, auto_precharge=auto_precharge
        )
        self.refreshes_executed += 1
        return done

    def refresh_physical(
        self, context: ExecutionContext, physical_line: int, now: int,
        auto_precharge: bool = True,
    ) -> int:
        """Host-only variant operating on a physical address directly —
        the hypervisor refreshes frames it has not mapped into its own
        address space (e.g. guest frames)."""
        if not self.primitives.has(Primitive.REFRESH_INSTRUCTION):
            raise IllegalInstructionError("refresh instruction not implemented")
        if not context.host:
            raise PrivilegeFaultError("physical refresh requires host privilege")
        done = self.controller.refresh_line(
            physical_line, now, auto_precharge=auto_precharge
        )
        self.refreshes_executed += 1
        return done

    # ------------------------------------------------------------------
    # ref_neighbors pa, b  (§4.3, optional DRAM assistance)
    # ------------------------------------------------------------------

    def ref_neighbors(
        self,
        context: ExecutionContext,
        physical_line: int,
        blast_radius: int,
        now: int,
    ) -> int:
        """Issue the proposed REF_NEIGHBORS command: DRAM refreshes all
        potential victims within ``blast_radius`` of the aggressor row,
        by *internal* adjacency."""
        if not self.primitives.has(Primitive.REF_NEIGHBORS_COMMAND):
            raise IllegalInstructionError("REF_NEIGHBORS not implemented by DRAM")
        if not context.host:
            raise PrivilegeFaultError("REF_NEIGHBORS requires host privilege")
        return self.controller.ref_neighbors_line(physical_line, blast_radius, now)

    # ------------------------------------------------------------------
    # uncore_move src, dst  (§4.2)
    # ------------------------------------------------------------------

    def uncore_move(
        self,
        context: ExecutionContext,
        src_physical_line: int,
        dst_physical_line: int,
        now: int,
    ) -> int:
        """Copy one line DRAM-to-DRAM through MC buffers (no core
        registers touched) — the efficient data path for aggressor-row
        wear-leveling (§4.2)."""
        if not self.primitives.has(Primitive.UNCORE_MOVE):
            raise IllegalInstructionError("uncore move not implemented")
        if not context.host:
            raise PrivilegeFaultError("uncore move requires host privilege")
        done = self.controller.uncore_move(src_physical_line, dst_physical_line, now)
        self.moves_executed += 1
        return done
