"""Declarative fault-injection configuration.

§4.2 of the paper warns that defense soundness rests on hardware
delivering what it promises: interrupts that arrive, refreshes that land
on the row software named, counters that read back what they counted.
A :class:`FaultConfig` describes a *degraded* platform along exactly
those axes — every field is one way the hardware can fail the defense —
and plugs into :class:`~repro.sim.config.SystemConfig` so any experiment
can be replayed under faults.

All injections are deterministic given ``(system seed, fault seed)``:
the fault plane derives one RNG stream per injector, so a scenario
matrix re-run with the same seeds reproduces byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class FaultConfig:
    """One degraded-hardware scenario.

    Rates are probabilities in ``[0, 1]`` applied independently per
    opportunity (per interrupt delivery, per refresh instruction, per
    counter read); intervals/counts are exact.  The default instance
    injects nothing (``enabled`` is False) so a config carrying one is
    behaviourally identical to a config carrying ``None``.
    """

    #: mixed into the system seed so two scenarios on one platform
    #: draw different injection streams
    seed: int = 0

    # --- ACT-interrupt delivery (§4.2: the defense's only eye) ---------
    #: probability an ACT_COUNT overflow never reaches the host OS
    drop_interrupt_rate: float = 0.0
    #: probability a delivered interrupt is delayed by ``delay_interrupt_ns``
    delay_interrupt_rate: float = 0.0
    #: how late a delayed interrupt arrives (simulated ns)
    delay_interrupt_ns: int = 0

    # --- refresh(va, ap) targeting (§4.3) ------------------------------
    #: probability a ``refresh`` instruction lands on the *wrong* row of
    #: the named bank (garbled row bits) instead of the one software named
    corrupt_refresh_rate: float = 0.0

    # --- batch scheduler -----------------------------------------------
    #: stall every Nth scheduler batch (0 = never)
    stall_batch_every: int = 0
    #: how long a stalled batch waits before issue (simulated ns)
    stall_batch_ns: int = 0

    # --- defense-visible counter reads ---------------------------------
    #: probability a counter read (interrupt count, uncore RDMSR) comes
    #: back with ``flip_count_bit`` inverted
    flip_count_read_rate: float = 0.0
    #: which bit the read-path corruption flips
    flip_count_bit: int = 3

    # --- host-OS reconfiguration storms --------------------------------
    #: re-apply ``set_threshold`` on every counter every N ACTs (0 = off)
    #: — models routine host reconfiguration an attacker can pace around
    reconfig_every_acts: int = 0
    #: emulate the pre-fix ``set_threshold`` that zeroed the in-flight
    #: count, for differential what-if runs against the fixed semantics
    reconfig_forgives: bool = False

    def __post_init__(self) -> None:
        for name in (
            "drop_interrupt_rate",
            "delay_interrupt_rate",
            "corrupt_refresh_rate",
            "flip_count_read_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in (
            "delay_interrupt_ns",
            "stall_batch_every",
            "stall_batch_ns",
            "reconfig_every_acts",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.flip_count_bit < 0:
            raise ValueError("flip_count_bit must be >= 0")
        if self.reconfig_forgives and not self.reconfig_every_acts:
            raise ValueError(
                "reconfig_forgives needs reconfig_every_acts > 0"
            )

    @property
    def enabled(self) -> bool:
        """True when any injector would ever fire."""
        return bool(
            self.drop_interrupt_rate
            or (self.delay_interrupt_rate and self.delay_interrupt_ns)
            or self.corrupt_refresh_rate
            or (self.stall_batch_every and self.stall_batch_ns)
            or self.flip_count_read_rate
            or self.reconfig_every_acts
        )

    def describe(self) -> dict:
        """JSON-native summary of the non-default knobs (for reports)."""
        default = FaultConfig()
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if getattr(self, field.name) != getattr(default, field.name)
        }

    def with_seed(self, seed: int) -> "FaultConfig":
        return replace(self, seed=seed)
