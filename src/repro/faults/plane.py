"""The fault plane: deterministic injectors hooked into a built system.

A :class:`FaultPlane` takes one :class:`~repro.faults.config.FaultConfig`
and installs its injectors into the seams the rest of the codebase
exposes for exactly this purpose:

* :attr:`ActCounter.delivery_filter` — drop or delay ACT_COUNT overflow
  interrupts before the host OS sees them;
* :attr:`ActCounter.read_filter` — corrupt defense-visible counter reads
  (the architectural count is untouched);
* :attr:`MemoryController.refresh_target_fault` — divert the proposed
  ``refresh(va, ap)`` instruction onto the wrong row (garbled row bits);
* :attr:`MemoryController.batch_fault` — stall every Nth scheduler batch;
* an ACT observer that replays host-OS reconfiguration storms against
  the counters (optionally emulating the historical ``set_threshold``
  bug that forgave the in-flight count).

Every injector draws from its own RNG stream derived from
``(system seed, fault seed, injector salt)``, so a scenario re-run with
the same seeds injects at identical points regardless of which other
injectors are active.  Injection counts live in :attr:`counters`
(registered with the metrics registry under ``faults.*``) and each
injection lands on the trace bus as a ``fault_injected`` event when
tracing is on.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Dict, Optional

from repro.faults.config import FaultConfig
from repro.mc.counters import ActInterrupt
from repro.obs import events as _ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.dram.geometry import DdrAddress
    from repro.sim.system import System


def _injector_rng(system_seed: int, fault_seed: int, salt: int) -> random.Random:
    """One independent stream per injector: mixing the salt into a
    product keeps streams apart even when ``fault_seed`` is 0."""
    return random.Random((system_seed * 0x9E3779B1) ^ (fault_seed << 8) ^ salt)


class FaultPlane:
    """All active injectors of one simulated platform."""

    def __init__(self, config: FaultConfig, system_seed: int) -> None:
        self.config = config
        self.system: "System | None" = None
        self.counters: Dict[str, int] = {
            "interrupts_dropped": 0,
            "interrupts_delayed": 0,
            "refreshes_corrupted": 0,
            "batches_stalled": 0,
            "reads_corrupted": 0,
            "reconfig_storms": 0,
        }
        seed = config.seed
        self._rng_drop = _injector_rng(system_seed, seed, 0xD20B)
        self._rng_delay = _injector_rng(system_seed, seed, 0xDE1A)
        self._rng_refresh = _injector_rng(system_seed, seed, 0x2EF2)
        self._rng_read = _injector_rng(system_seed, seed, 0x2EAD)
        self._acts_seen = 0
        self._batches_seen = 0
        self._trace = None

    @property
    def total_injections(self) -> int:
        return sum(self.counters.values())

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, system: "System") -> None:
        """Install every configured injector into a built system."""
        if self.system is not None:
            raise RuntimeError("fault plane is already attached")
        self.system = system
        self._trace = system.obs.trace
        config = self.config
        controller = system.controller
        if config.drop_interrupt_rate or (
            config.delay_interrupt_rate and config.delay_interrupt_ns
        ):
            for counter in controller.counters.values():
                counter.delivery_filter = self._filter_delivery
        if config.flip_count_read_rate:
            for counter in controller.counters.values():
                counter.read_filter = self._filter_read
        if config.corrupt_refresh_rate:
            controller.refresh_target_fault = self._corrupt_refresh_target
        if config.stall_batch_every and config.stall_batch_ns:
            controller.batch_fault = self._stall_batch
        if config.reconfig_every_acts:
            controller.add_act_observer(self._on_act_reconfig)
        system.obs.metrics.register_group("faults", self.counters)

    # ------------------------------------------------------------------
    # Injectors
    # ------------------------------------------------------------------

    def _filter_delivery(
        self, interrupt: ActInterrupt
    ) -> Optional[ActInterrupt]:
        config = self.config
        if (
            config.drop_interrupt_rate
            and self._rng_drop.random() < config.drop_interrupt_rate
        ):
            self.counters["interrupts_dropped"] += 1
            self._emit(
                interrupt.time_ns, "drop_interrupt", channel=interrupt.channel
            )
            return None
        if (
            config.delay_interrupt_rate
            and config.delay_interrupt_ns
            and self._rng_delay.random() < config.delay_interrupt_rate
        ):
            self.counters["interrupts_delayed"] += 1
            self._emit(
                interrupt.time_ns, "delay_interrupt",
                channel=interrupt.channel, delay_ns=config.delay_interrupt_ns,
            )
            return dataclasses.replace(
                interrupt, time_ns=interrupt.time_ns + config.delay_interrupt_ns
            )
        return interrupt

    def _filter_read(self, count: int) -> int:
        if self._rng_read.random() < self.config.flip_count_read_rate:
            self.counters["reads_corrupted"] += 1
            return count ^ (1 << self.config.flip_count_bit)
        return count

    def _corrupt_refresh_target(
        self, address: "DdrAddress", now: int
    ) -> "DdrAddress":
        if self._rng_refresh.random() >= self.config.corrupt_refresh_rate:
            return address
        assert self.system is not None
        rows = self.system.geometry.rows_per_bank
        if rows < 2:  # pragma: no cover - single-row geometry
            return address
        # Bus-corruption model: the row bits the command carries are
        # garbled, so the refresh lands on an arbitrary row of the same
        # bank.  (A mere off-by-one deflection is semi-benign: with
        # blast radius >= 2 it usually still hits a real victim.)
        wrong_row = self._rng_refresh.randrange(rows - 1)
        if wrong_row >= address.row:
            wrong_row += 1
        self.counters["refreshes_corrupted"] += 1
        self._emit(
            now, "corrupt_refresh",
            named_row=address.row, actual_row=wrong_row,
            channel=address.channel, rank=address.rank, bank=address.bank,
        )
        return dataclasses.replace(address, row=wrong_row)

    def _stall_batch(self, time_ns: int, size: int) -> int:
        self._batches_seen += 1
        if self._batches_seen % self.config.stall_batch_every:
            return 0
        self.counters["batches_stalled"] += 1
        self._emit(
            time_ns, "stall_batch",
            size=size, stall_ns=self.config.stall_batch_ns,
        )
        return self.config.stall_batch_ns

    def _on_act_reconfig(
        self, address: "DdrAddress", now: int,
        domain: Optional[int], is_dma: bool,
    ) -> None:
        self._acts_seen += 1
        if self._acts_seen % self.config.reconfig_every_acts:
            return
        assert self.system is not None
        self.counters["reconfig_storms"] += 1
        for counter in self.system.controller.counters.values():
            counter.set_threshold(counter.threshold)
            if self.config.reconfig_forgives:
                counter.forgive_pending()
        self._emit(
            now, "reconfig_storm", forgiving=self.config.reconfig_forgives,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _emit(self, time_ns: int, fault: str, **detail: object) -> None:
        trace = self._trace
        if trace is not None and trace.enabled:
            trace.emit(_ev.FAULT_INJECTED, time_ns, fault=fault, **detail)
