"""Differential fault harness: the same workload with and without faults.

For one attack scenario (platform, defense, pattern, seed) the harness
runs a baseline cell, an undefended reference cell, and one cell per
fault scenario — all from the same seed, so the *only* difference
between cells is the injected fault — and classifies each faulted cell:

* ``graceful``          — the defense's guarantee (no cross-domain
  flips) still holds under the fault;
* ``violated-detected`` — the guarantee broke, and the invariant suite
  flagged the degradation (an auditor reading the report knows);
* ``violated-silent``   — the guarantee broke and nothing in the
  checked surface noticed: the dangerous quadrant §4.2's reliance on
  hardware reporting warns about.

The report is a plain JSON-native dict: ints, strings, and sorted
structures only, so a fixed spec serializes byte-identically across
runs (``python -m repro faults`` asserts on this in CI).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional

from repro.faults.config import FaultConfig
from repro.faults.scenarios import default_matrix

#: classification labels, in report order
CLASSIFICATIONS = ("graceful", "violated-detected", "violated-silent")


@dataclass(frozen=True)
class DiffSpec:
    """One differential run: everything but the fault config."""

    platform: str = "legacy+primitives"
    defense: Optional[str] = "targeted-refresh"
    pattern: str = "double-sided"
    sides: int = 8
    scale: int = 64
    windows: float = 1.0
    seed: int = 1234
    invariant_level: str = "deep"

    def base_config(self):
        """The platform config (late imports keep this module light)."""
        from repro.core.primitives import PrimitiveSet
        from repro.sim import ideal_platform, legacy_platform, proposed_platform

        if self.platform == "legacy":
            return legacy_platform(scale=self.scale, seed=self.seed)
        if self.platform == "legacy+primitives":
            return legacy_platform(
                scale=self.scale, seed=self.seed
            ).with_primitives(PrimitiveSet.proposed())
        if self.platform == "proposed":
            return proposed_platform(scale=self.scale, seed=self.seed)
        if self.platform == "ideal":
            return ideal_platform(scale=self.scale, seed=self.seed)
        raise ValueError(f"unknown platform {self.platform!r}")

    def armed_counter(self) -> Dict[str, int]:
        """Threshold/jitter the defense will arm (mirrors
        ``TargetedRefreshDefense._wire``), used to pace storm scenarios."""
        from repro.dram.presets import by_name

        config = self.base_config()
        mac = by_name(config.generation).scaled(config.scale).profile.mac
        threshold = max(2, int(mac * 0.125))
        return {"threshold": threshold, "jitter": int(threshold * 0.25)}


def run_cell(
    spec: DiffSpec,
    fault: Optional[FaultConfig] = None,
    defense: Optional[str] = "unset",
) -> Dict[str, object]:
    """Run one (spec, fault) cell and return its JSON-native record.

    ``defense`` overrides the spec's defense (pass ``None`` for an
    undefended reference cell)."""
    from repro.analysis.scenarios import build_scenario, run_attack_under_noise

    defense_name = spec.defense if defense == "unset" else defense
    config = replace(
        spec.base_config(),
        faults=fault,
        invariant_level=spec.invariant_level,
    )
    defenses = [_make_defense(defense_name)] if defense_name else []
    interleaved = True
    if defense_name:
        from repro.defenses.registry import (
            DEFENSE_BY_NAME,
            apply_build_overrides,
            build_overrides,
        )

        cls = DEFENSE_BY_NAME[defense_name]
        # Allocator-policy defenses (bank partitioning, guard rows)
        # refuse to attach unless the system is built with their
        # placement policy — which is inherently non-interleaved.
        config = apply_build_overrides(config, cls)
        interleaved = not build_overrides(cls)
    scenario = build_scenario(
        config, defenses=defenses, interleaved_allocation=interleaved
    )
    # Attack under benign noise via the cooperative engine: the victim's
    # traffic goes through the batch scheduler (so the stall injector has
    # a seam to hit) and the engine runs the invariant suite at every
    # flip-drain point, not just at the end.
    result, _ = run_attack_under_noise(
        scenario, spec.pattern, sides=spec.sides, windows=spec.windows,
        scheduler="fr-fcfs",
    )
    system = scenario.system
    suite = system.invariants
    if suite is not None:
        suite.check(result.finished_ns)
    counters = list(system.controller.counters.values())
    claims_guarantee = any(
        d.traits.stops_cross_domain for d in scenario.defenses
    )
    cell: Dict[str, object] = {
        "defense": defense_name,
        "plan_viable": bool(result.plan.viable),
        "hammer_iterations": result.hammer_iterations,
        "cross_domain_flips": result.cross_domain_flips,
        "intra_domain_flips": result.intra_domain_flips,
        "interrupts_raised": sum(c.interrupts_raised for c in counters),
        "interrupts_delivered": sum(c.interrupts_delivered for c in counters),
        "interrupts_lost": sum(c.interrupts_lost for c in counters),
        "handler_failures": sum(c.handler_failures for c in counters),
        "targeted_refreshes": system.controller.stats.targeted_refreshes,
        "neighbor_refresh_commands":
            system.controller.stats.neighbor_refresh_commands,
        "defense_counters": {
            d.name: dict(sorted(d.counters.items()))
            for d in scenario.defenses
        },
        "fault_injections": (
            dict(sorted(system.faults.counters.items()))
            if system.faults is not None else {}
        ),
        "invariant_checks": (
            suite.counters["checks"] if suite is not None else 0
        ),
        "invariant_violations": (
            [v.as_json_dict() for v in suite.violations]
            if suite is not None else []
        ),
        "claims_guarantee": claims_guarantee,
        "guarantee_holds": (
            claims_guarantee and result.cross_domain_flips == 0
        ),
    }
    return cell


def classify(cell: Dict[str, object]) -> str:
    """Place one faulted cell into the graceful/detected/silent taxonomy."""
    if not cell["claims_guarantee"]:
        return "no-guarantee"
    if cell["guarantee_holds"]:
        return "graceful"
    if cell["invariant_violations"]:
        return "violated-detected"
    return "violated-silent"


def run_matrix(
    spec: DiffSpec,
    scenarios: Optional[Dict[str, FaultConfig]] = None,
) -> Dict[str, object]:
    """Run the whole differential matrix; returns the report dict."""
    if scenarios is None:
        armed = spec.armed_counter()
        scenarios = default_matrix(armed["threshold"], armed["jitter"])
    baseline = run_cell(spec, fault=None)
    undefended = run_cell(spec, fault=None, defense=None)
    cells: Dict[str, Dict[str, object]] = {}
    summary: Dict[str, List[str]] = {label: [] for label in CLASSIFICATIONS}
    for name in sorted(scenarios):
        fault = scenarios[name]
        cell = run_cell(spec, fault=fault)
        cell["fault_config"] = fault.describe()
        label = classify(cell)
        cell["classification"] = label
        cells[name] = cell
        if label in summary:
            summary[label].append(name)
    return {
        "spec": asdict(spec),
        "baseline": baseline,
        "undefended": undefended,
        "scenarios": cells,
        "summary": summary,
    }


def render_report(report: Dict[str, object]) -> str:
    """Human-readable one-line-per-scenario view of a matrix report."""
    lines: List[str] = []
    spec = report["spec"]
    lines.append(
        f"differential fault matrix: {spec['defense']} on "
        f"{spec['platform']} ({spec['pattern']}, scale {spec['scale']}, "
        f"seed {spec['seed']})"
    )
    baseline = report["baseline"]
    undefended = report["undefended"]
    lines.append(
        f"  baseline:   cross-domain flips {baseline['cross_domain_flips']}, "
        f"guarantee holds: {baseline['guarantee_holds']}, "
        f"invariant violations: {len(baseline['invariant_violations'])}"
    )
    lines.append(
        f"  undefended: cross-domain flips {undefended['cross_domain_flips']} "
        f"(attack viability reference)"
    )
    width = max((len(name) for name in report["scenarios"]), default=0)
    for name, cell in report["scenarios"].items():
        violations = len(cell["invariant_violations"])
        lines.append(
            f"  {name:<{width}}  {cell['classification']:<17} "
            f"flips={cell['cross_domain_flips']:<3} "
            f"injections={sum(cell['fault_injections'].values()):<5} "
            f"violations={violations}"
        )
    summary = report["summary"]
    lines.append(
        "  summary: "
        + ", ".join(f"{label}: {len(summary[label])}" for label in summary)
    )
    return "\n".join(lines)


def report_to_json(report: Dict[str, object]) -> str:
    """Canonical serialization: same report → byte-identical text."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def _make_defense(name: str):
    # Resolved from the defense registry (derived from ALL_DEFENSES),
    # not a hand-maintained map that goes stale as the zoo grows.
    from repro.defenses.registry import make_defense

    return make_defense(name)
