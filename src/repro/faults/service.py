"""Chaos injectors for the campaign service: break it like production.

:class:`~repro.faults.crash.CrashingSpec` sabotages individual
*workers*; this module sabotages the **service layer** around them —
the queue log, the journal disk, and the processes themselves.  Each
injector produces exactly one of the failure modes the service's
recovery matrix (``docs/RESILIENCE.md``) promises to survive:

=====================  =================================================
injector               failure it models
=====================  =================================================
:func:`sigkill`        a worker or service process dying mid-write
:func:`sigkill_after`  the same, on a timer while the victim runs
:func:`tear_queue_tail`  power loss mid-append: a torn final queue op
:class:`journal_disk_full`  ``ENOSPC`` on the Nth journal append
:func:`hang_job_spec`  a wedged worker that will never finish
=====================  =================================================

Everything here is deterministic and marker/env driven, so the chaos
tests (``tests/runtime/test_service_chaos.py``) and the CI smoke
(``scripts/serve_smoke.py``) replay the same failures every run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.runtime.journal import CHAOS_ENOSPC_ENV

#: a torn queue op: valid JSON prefix, no terminating newline — exactly
#: what a SIGKILL between ``write`` and completing the line leaves
TORN_FRAGMENT = b'{"op": "state", "id": "torn-mid-'


def sigkill(process: Union[int, subprocess.Popen]) -> None:
    """SIGKILL a process *now* — no cleanup handlers, no drain.

    Accepts a pid or a ``Popen``; a pid that is a process-group leader
    takes its whole group down (the service's workers), mirroring an
    OOM-killer or a ``kill -9`` on the service.
    """
    pid = process if isinstance(process, int) else process.pid
    try:
        os.killpg(os.getpgid(pid), signal.SIGKILL)
    except (OSError, PermissionError):
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass  # already gone — the failure we wanted
    if isinstance(process, subprocess.Popen):
        process.wait()


def sigkill_after(
    process: subprocess.Popen,
    delay_s: float,
    when: Optional[Path] = None,
) -> threading.Thread:
    """Arm a timer that SIGKILLs ``process`` while it runs.

    With ``when`` set, the timer additionally waits (up to ``delay_s``
    extra) for that file to exist before killing — e.g. a job's journal,
    so the kill provably lands *mid-job* rather than before the victim
    got anywhere.  Returns the (daemon) killer thread; join it to know
    the kill happened.
    """

    def _kill() -> None:
        time.sleep(delay_s)
        if when is not None:
            deadline = time.monotonic() + max(delay_s, 1.0)
            while not when.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
        if process.poll() is None:
            sigkill(process)

    thread = threading.Thread(target=_kill, daemon=True)
    thread.start()
    return thread


def tear_queue_tail(
    queue_path: Union[str, Path], fragment: bytes = TORN_FRAGMENT
) -> int:
    """Append a torn (newline-less) fragment to a queue log.

    Models a crash mid-append.  The queue contract says the next locked
    append truncates the fragment away and readers never fold it; the
    chaos tests assert both.  Returns the byte offset the fragment
    starts at (i.e. the size the log must shrink back to).
    """
    queue_path = Path(queue_path)
    if fragment.endswith(b"\n"):
        raise ValueError("a torn fragment must not end in a newline")
    offset = queue_path.stat().st_size
    with queue_path.open("ab") as stream:
        stream.write(fragment)
        stream.flush()
        os.fsync(stream.fileno())
    return offset


class journal_disk_full:
    """Context manager: the Nth-next journal append raises ``ENOSPC``.

    Drives the :data:`~repro.runtime.journal.CHAOS_ENOSPC_ENV` hook —
    append budget ``n`` means ``n`` appends succeed and the one after
    fails, in *every* process inheriting the environment (each process
    counts its own appends, so a respawned worker gets a fresh budget —
    which is exactly the retry-after-cleanup path the service takes).
    """

    def __init__(self, appends_before_full: int) -> None:
        if appends_before_full < 0:
            raise ValueError("appends_before_full must be >= 0")
        self.appends_before_full = appends_before_full
        self._previous: Optional[str] = None

    def __enter__(self) -> "journal_disk_full":
        self._previous = os.environ.get(CHAOS_ENOSPC_ENV)
        os.environ[CHAOS_ENOSPC_ENV] = str(self.appends_before_full)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is None:
            os.environ.pop(CHAOS_ENOSPC_ENV, None)
        else:
            os.environ[CHAOS_ENOSPC_ENV] = self._previous


def hang_job_spec(spec, seeds, hang_s: float = 3600.0):
    """A job spec whose chosen seeds wedge for ``hang_s`` seconds.

    Thin veneer over :class:`~repro.faults.crash.CrashingSpec` in
    ``hang`` mode, shaped for service tests: submit the returned spec,
    watch the per-seed timeout (or a SIGTERM drain's grace deadline)
    fire.
    """
    from repro.faults.crash import CrashingSpec

    return CrashingSpec(
        spec=spec, crash_seeds=tuple(seeds), mode="hang", hang_s=hang_s
    )
