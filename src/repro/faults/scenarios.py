"""Named degraded-hardware scenarios for the fault matrix.

Each entry is one :class:`~repro.faults.config.FaultConfig` stressing a
single hardware promise the paper's defenses lean on.  The matrix is
parameterized by the armed counter threshold/jitter so the host-OS
reconfiguration storms can be paced *below* the detection threshold —
the adversarial placement that made the historical ``set_threshold``
count-forgiving bug exploitable (an attacker riding the storms never
accumulated enough counted ACTs to overflow).

``reconfig-storm`` vs ``reconfig-storm-forgiving`` is the differential
pair the harness uses to demonstrate the fix: identical storms, with the
forgiving arm re-enabling the old zero-the-count semantics through the
dedicated emulation seam.
"""

from __future__ import annotations

from typing import Dict

from repro.faults.config import FaultConfig


def storm_interval(act_threshold: int, reset_jitter: int) -> int:
    """A reconfiguration cadence strictly below the earliest possible
    overflow (threshold minus the maximum jitter draw): with the old
    forgiving semantics the counter can then *never* fire."""
    earliest_overflow = max(1, act_threshold - reset_jitter)
    return max(1, earliest_overflow // 2)


def default_matrix(
    act_threshold: int, reset_jitter: int = 0
) -> Dict[str, FaultConfig]:
    """The standard scenario matrix, ordered for report output."""
    storm = storm_interval(act_threshold, reset_jitter)
    return {
        "drop-interrupts": FaultConfig(seed=11, drop_interrupt_rate=0.5),
        "drop-most-interrupts": FaultConfig(seed=12, drop_interrupt_rate=0.97),
        "delay-interrupts": FaultConfig(
            seed=13, delay_interrupt_rate=0.75, delay_interrupt_ns=2_000
        ),
        "corrupt-refresh": FaultConfig(seed=14, corrupt_refresh_rate=1.0),
        "stall-scheduler": FaultConfig(
            seed=15, stall_batch_every=4, stall_batch_ns=200
        ),
        "flip-counter-reads": FaultConfig(seed=16, flip_count_read_rate=0.5),
        "reconfig-storm": FaultConfig(seed=17, reconfig_every_acts=storm),
        "reconfig-storm-forgiving": FaultConfig(
            seed=17, reconfig_every_acts=storm, reconfig_forgives=True
        ),
    }
