"""Harness-level fault injection: kill the *worker*, not the simulation.

PR 3's fault plane audits the simulated hardware; :class:`CrashingSpec`
audits the harness that runs it.  It wraps any picklable replication
spec and, on chosen seeds, makes the worker die (``os._exit``), raise,
or hang — exactly the failures the :mod:`repro.runtime` supervisor must
recover from (``BrokenProcessPool`` respawn, bounded retry, per-task
timeout).

With a ``marker_dir`` the crash fires only on the *first* attempt of
each chosen seed: the spec drops a marker file before dying, so the
supervisor's retry finds the marker and runs the seed normally.  That
makes every recovery branch deterministic to exercise end-to-end —
campaign output after recovery must be bit-identical to a run that
never crashed.  Without a ``marker_dir`` the seed fails every attempt,
which is how retry exhaustion and permanent-failure reporting are
tested.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.stats import Number, ScenarioFn

#: exit status a killed worker dies with (visible in pool diagnostics)
CRASH_EXIT_STATUS = 86

#: supported failure modes
CRASH_MODES = ("kill", "raise", "hang")


class InjectedWorkerError(RuntimeError):
    """The in-process failure :class:`CrashingSpec` raises in ``raise``
    mode (distinct from any real scenario error)."""


@dataclass(frozen=True)
class CrashingSpec:
    """Picklable wrapper that sabotages chosen seeds.

    ``mode``:

    * ``"kill"``  — ``os._exit`` the worker process (breaks the whole
      pool; in a serial path this kills the campaign, which is what the
      SIGKILL-and-resume CI smoke covers instead);
    * ``"raise"`` — raise :class:`InjectedWorkerError` (pool survives;
      exercises plain retry);
    * ``"hang"``  — sleep ``hang_s`` before continuing (exercises the
      per-task timeout).
    """

    #: results depend on wall-clock hangs and marker-file state, not
    #: just (spec, seed) — and a cached result would skip the crash the
    #: harness test exists to provoke — so never serve this from cache
    cacheable = False

    spec: ScenarioFn
    crash_seeds: Tuple[int, ...] = ()
    mode: str = "kill"
    #: when set, each chosen seed crashes only on its first attempt
    marker_dir: Optional[str] = None
    hang_s: float = 60.0

    def __post_init__(self) -> None:
        if self.mode not in CRASH_MODES:
            raise ValueError(
                f"mode must be one of {CRASH_MODES}, got {self.mode!r}"
            )

    def __call__(self, seed: int) -> Mapping[str, Number]:
        if seed in self.crash_seeds and self._arm(seed):
            if self.mode == "kill":
                os._exit(CRASH_EXIT_STATUS)
            if self.mode == "raise":
                raise InjectedWorkerError(
                    f"injected crash on seed {seed}"
                )
            time.sleep(self.hang_s)
        return self.spec(seed)

    def _arm(self, seed: int) -> bool:
        """Should this attempt crash?  Drops a marker first so the next
        attempt (in any process) runs clean."""
        if self.marker_dir is None:
            return True
        marker = Path(self.marker_dir) / f"seed-{seed}.crashed"
        if marker.exists():
            return False
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()
        return True


def crash_markers(marker_dir: str) -> Dict[int, bool]:
    """Which seeds have already burned their crash (test helper)."""
    markers: Dict[int, bool] = {}
    directory = Path(marker_dir)
    if not directory.exists():
        return markers
    for entry in directory.glob("seed-*.crashed"):
        try:
            seed = int(entry.stem.split("-", 1)[1].split(".")[0])
        except (IndexError, ValueError):  # pragma: no cover - stray file
            continue
        markers[seed] = True
    return markers
