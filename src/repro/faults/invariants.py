"""Invariant checkers: cheap always-on and deep opt-in assertions.

The simulator's claims are only as good as its bookkeeping, and the
fault plane exists precisely to knock that bookkeeping loose.  An
:class:`InvariantSuite` watches a built system for the contracts the
rest of the codebase relies on:

Cheap (``invariant_level="cheap"``) — polled at flip-drain points and at
run end, O(live state) each:

* ``act_conservation``     — the controller's ACT statistic equals what
  the per-channel counters saw plus the targeted refreshes that bypass
  them; trace events must agree when a counting sink is installed.
* ``interrupt_conservation`` — every raised interrupt was either
  delivered to the host or accounted lost by the delivery seam.
* ``counter_pending``      — each counter's in-flight count and drawn
  overflow point stay inside their architectural bounds (the class of
  bug the historical ``set_threshold`` reset belonged to).
* ``mac_flip_or_refresh``  — no victim row carries pressure at or above
  the MAC without the oracle having logged its flip-or-trip, and no
  pressure is ever negative.
* ``metrics_coverage``     — every statistics field and every attached
  defense's live counters are reachable through the metrics registry
  (extends ``assert_covers``: a defense that reassigns its counters
  dict after attach leaves the registry reading a stale object).

Deep (``invariant_level="deep"``) adds inline probes wrapped around the
hot paths — more expensive, so opt-in:

* ``blast_radius_clamp``        — an ACT must not leak pressure across a
  subarray boundary even when the unclipped blast radius reaches over it.
* ``targeted_refresh_efficacy`` — after a ``refresh`` instruction the
  *named* row's pressure is gone (catches diverted refreshes).
* ``ref_neighbors_coverage``    — after REF_NEIGHBORS every internal
  neighbour within the radius is clean.
* ``counter_read_consistency``  — host-visible counter reads agree with
  the architectural count (catches read-path corruption).

Violations are recorded (deduplicated per invariant/detail), counted
under ``invariants.*`` in the metrics registry, emitted as
``invariant_violation`` trace events, and optionally raised
(``strict=True``) for tests that want the first failure loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.obs import events as _ev
from repro.obs.trace import CountingSink

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

LEVELS = ("cheap", "deep")


@dataclass(frozen=True)
class Violation:
    """One recorded invariant breach."""

    invariant: str
    time_ns: int
    detail: str

    def as_json_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "time_ns": self.time_ns,
            "detail": self.detail,
        }


class InvariantViolationError(AssertionError):
    """Raised in strict mode on the first violation."""


class InvariantSuite:
    """All invariant checks of one simulated platform."""

    def __init__(
        self,
        system: "System",
        level: str = "cheap",
        strict: bool = False,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown invariant level {level!r}; known: {LEVELS}")
        self.system = system
        self.level = level
        self.strict = strict
        self.violations: List[Violation] = []
        self.counters: Dict[str, int] = {"checks": 0, "violations": 0}
        self._seen: Set[Tuple[str, str]] = set()
        system.obs.metrics.register_group("invariants", self.counters)
        if level == "deep":
            self._install_deep_probes()

    # ------------------------------------------------------------------
    # Polled checks (engine drain points, run end, tests)
    # ------------------------------------------------------------------

    def check(self, now: int) -> List[Violation]:
        """Run every polled check; returns violations new to this call."""
        self.counters["checks"] += 1
        before = len(self.violations)
        self._check_act_conservation(now)
        self._check_interrupt_conservation(now)
        self._check_counter_pending(now)
        self._check_mac_flip_or_refresh(now)
        self._check_metrics_coverage(now)
        if self.level == "deep":
            self._check_counter_read_consistency(now)
        return self.violations[before:]

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    # Cheap checks
    # ------------------------------------------------------------------

    def _check_act_conservation(self, now: int) -> None:
        controller = self.system.controller
        stats = controller.stats
        counted = sum(
            counter.total_acts for counter in controller.counters.values()
        )
        expected = counted + stats.targeted_refreshes
        if stats.acts != expected:
            self._record(
                "act_conservation", now,
                f"controller stats record {stats.acts} ACTs but the "
                f"channel counters saw {counted} plus "
                f"{stats.targeted_refreshes} targeted refreshes",
            )
        sink = self.system.obs.trace.sink
        if isinstance(sink, CountingSink):
            traced = sink.count(_ev.ACT) + sink.count(_ev.TARGETED_REFRESH)
            if traced != stats.acts:
                self._record(
                    "act_conservation", now,
                    f"trace records {traced} ACT-path events but the "
                    f"controller counted {stats.acts}",
                )

    def _check_interrupt_conservation(self, now: int) -> None:
        for channel, counter in self.system.controller.counters.items():
            accounted = counter.interrupts_delivered + counter.interrupts_lost
            if counter.interrupts_raised != accounted:
                self._record(
                    "interrupt_conservation", now,
                    f"channel {channel} raised {counter.interrupts_raised} "
                    f"interrupts but delivered+lost is {accounted}",
                )

    def _check_counter_pending(self, now: int) -> None:
        for channel, counter in self.system.controller.counters.items():
            count, next_at = counter.pending
            if not 0 <= count <= counter.total_acts:
                self._record(
                    "counter_pending", now,
                    f"channel {channel} pending count {count} is outside "
                    f"[0, total_acts={counter.total_acts}]",
                )
            if not 1 <= next_at <= counter.threshold:
                self._record(
                    "counter_pending", now,
                    f"channel {channel} overflow point {next_at} is outside "
                    f"[1, threshold={counter.threshold}]",
                )

    def _check_mac_flip_or_refresh(self, now: int) -> None:
        tracker = self.system.device.tracker
        mac = self.system.profile.mac
        for row_key, pressure in tracker.iter_pressure():
            if pressure < 0.0:
                self._record(
                    "mac_flip_or_refresh", now,
                    f"row {row_key} carries negative pressure {pressure}",
                )
            elif pressure >= mac and not tracker.is_tripped(row_key):
                self._record(
                    "mac_flip_or_refresh", now,
                    f"row {row_key} reached pressure {pressure:.1f} >= "
                    f"MAC {mac} with no flip or refresh logged",
                )

    def _check_metrics_coverage(self, now: int) -> None:
        system = self.system
        registry = system.obs.metrics
        try:
            registry.assert_covers(system.controller.stats.snapshot(), "mc")
        except RuntimeError as error:
            self._record("metrics_coverage", now, str(error))
        snapshot = registry.snapshot()
        groups: List[Tuple[str, Dict[str, int]]] = [
            ("invariants", self.counters)
        ]
        faults = getattr(system, "faults", None)
        if faults is not None:
            groups.append(("faults", faults.counters))
        for defense in getattr(system, "defenses", ()):
            groups.append((f"defense.{defense.name}", defense.counters))
        for prefix, live in groups:
            for key, value in live.items():
                name = f"{prefix}.{key}"
                if snapshot.get(name) != value:
                    self._record(
                        "metrics_coverage", now,
                        f"registry reports {name}={snapshot.get(name)!r} "
                        f"but the live counter holds {value!r} (stale or "
                        f"reassigned counters object?)",
                    )

    # ------------------------------------------------------------------
    # Deep checks
    # ------------------------------------------------------------------

    def _check_counter_read_consistency(self, now: int) -> None:
        for channel, counter in self.system.controller.counters.items():
            architectural = counter.pending[0]
            observed = counter.read_count()
            if observed != architectural:
                self._record(
                    "counter_read_consistency", now,
                    f"channel {channel} read path returns corrupted counts",
                )

    def _install_deep_probes(self) -> None:
        """Wrap the hot paths with inline assertions.  Installed once at
        construction; each wrapper delegates to the original so results
        are identical — only checks are added."""
        system = self.system
        tracker = system.device.tracker
        geometry = system.geometry
        profile = system.profile
        device = system.device
        controller = system.controller
        remapper = device.remapper
        suite = self

        original_on_activate = tracker.on_activate

        def checked_on_activate(address, time_ns, domain=None):
            # Snapshot every row the *unclipped* blast radius reaches in
            # adjacent subarrays; none of them may gain pressure.
            row = address.row
            rows_per_subarray = geometry.rows_per_subarray
            subarray = row // rows_per_subarray
            outside = []
            low = max(0, row - profile.blast_radius)
            high = min(geometry.rows_per_bank - 1, row + profile.blast_radius)
            for victim_row in range(low, high + 1):
                if victim_row // rows_per_subarray != subarray:
                    key = (address.channel, address.rank, address.bank,
                           victim_row)
                    outside.append((key, tracker.pressure_of(key)))
            flips = original_on_activate(address, time_ns, domain)
            for key, pressure_before in outside:
                if tracker.pressure_of(key) > pressure_before:
                    suite._record(
                        "blast_radius_clamp", time_ns,
                        f"ACT of row {row} leaked pressure across the "
                        f"subarray boundary into row {key}",
                    )
            return flips

        tracker.on_activate = checked_on_activate  # type: ignore[method-assign]

        original_refresh_line = controller.refresh_line

        def checked_refresh_line(physical_line, now, auto_precharge=True):
            ready = original_refresh_line(physical_line, now, auto_precharge)
            address = controller.mapper.line_to_ddr(physical_line)
            bank_index = geometry.bank_index(address)
            internal = remapper.to_internal(bank_index, address.row)
            key = (address.channel, address.rank, address.bank, internal)
            if tracker.pressure_of(key) != 0.0 or tracker.is_tripped(key):
                suite._record(
                    "targeted_refresh_efficacy", now,
                    f"refresh of line {physical_line} left pressure "
                    f"{tracker.pressure_of(key):.1f} on named row {key}",
                )
            return ready

        controller.refresh_line = checked_refresh_line  # type: ignore[method-assign]

        original_ref_neighbors = device.ref_neighbors

        def checked_ref_neighbors(address, blast_radius, now):
            done = original_ref_neighbors(address, blast_radius, now)
            bank_index = geometry.bank_index(address)
            internal = remapper.to_internal(bank_index, address.row)
            for victim_row in geometry.neighbors_within(internal, blast_radius):
                key = (address.channel, address.rank, address.bank, victim_row)
                if tracker.pressure_of(key) != 0.0:
                    suite._record(
                        "ref_neighbors_coverage", now,
                        f"REF_NEIGHBORS around internal row {internal} left "
                        f"pressure on neighbour {key}",
                    )
            return done

        device.ref_neighbors = checked_ref_neighbors  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record(self, invariant: str, now: int, detail: str) -> None:
        key = (invariant, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        violation = Violation(invariant=invariant, time_ns=now, detail=detail)
        self.violations.append(violation)
        self.counters["violations"] += 1
        trace = self.system.obs.trace
        if trace.enabled:
            trace.emit(
                _ev.INVARIANT_VIOLATION, now,
                invariant=invariant, detail=detail,
            )
        if self.strict:
            raise InvariantViolationError(
                f"{invariant} violated at t={now}ns: {detail}"
            )
