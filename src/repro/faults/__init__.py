"""Fault injection, invariant checking, and the differential harness.

The paper's §4 primitives make system software depend on hardware
*reporting* faithfully: interrupts that arrive, refreshes that land
where software aimed, counters that read back what they counted.  This
package stresses exactly those promises:

* :mod:`repro.faults.config`     — :class:`FaultConfig`, the declarative
  description of one degraded-hardware scenario (plugs into
  :class:`~repro.sim.config.SystemConfig` via the ``faults`` field);
* :mod:`repro.faults.plane`      — :class:`FaultPlane`, the seed-driven
  injectors wired into a built system;
* :mod:`repro.faults.invariants` — :class:`InvariantSuite`, cheap
  always-on and deep opt-in assertions over the simulator's bookkeeping
  (``invariant_level`` in the system config);
* :mod:`repro.faults.scenarios`  — the named scenario matrix;
* :mod:`repro.faults.diff`       — the differential harness behind
  ``python -m repro faults``: same workload with/without each fault,
  classifying defenses as degrading gracefully vs violating their
  guarantee silently;
* :mod:`repro.faults.crash`      — :class:`CrashingSpec`, harness-level
  fault injection that kills/hangs replication *workers* on chosen
  seeds to exercise every :mod:`repro.runtime` recovery branch;
* :mod:`repro.faults.service`    — chaos injectors for the campaign
  service layer: SIGKILL processes, tear the queue log's final entry,
  fill the journal disk, wedge a job.
"""

from repro.faults.config import FaultConfig
from repro.faults.crash import (
    CRASH_EXIT_STATUS,
    CRASH_MODES,
    CrashingSpec,
    InjectedWorkerError,
    crash_markers,
)
from repro.faults.invariants import (
    InvariantSuite,
    InvariantViolationError,
    Violation,
)
from repro.faults.plane import FaultPlane
from repro.faults.scenarios import default_matrix, storm_interval
from repro.faults.service import (
    hang_job_spec,
    journal_disk_full,
    sigkill,
    sigkill_after,
    tear_queue_tail,
)

__all__ = [
    "CRASH_EXIT_STATUS",
    "CRASH_MODES",
    "CrashingSpec",
    "FaultConfig",
    "FaultPlane",
    "InjectedWorkerError",
    "crash_markers",
    "InvariantSuite",
    "InvariantViolationError",
    "Violation",
    "default_matrix",
    "storm_interval",
    "hang_job_spec",
    "journal_disk_full",
    "sigkill",
    "sigkill_after",
    "tear_queue_tail",
]
