"""A cooperative discrete-time engine for multi-actor scenarios.

Attack-under-noise experiments need an attacker and benign tenants to
share the memory system concurrently.  Each actor exposes
``step(now) -> next_now`` (one small quantum of work); the engine always
advances the actor with the smallest local clock, which serializes the
*submission* order by time while the memory system itself models the
overlap.  Flips are drained as soon as a step produces any, so enclaves
and observers see them promptly without paying a drain per quiet step.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System


class Actor(Protocol):
    """Anything schedulable: Attacker and WorkloadRunner both conform."""

    def step(self, now: int) -> int:
        """Do one quantum starting at ``now``; return its finish time."""


@dataclass
class EngineResult:
    """Outcome of one engine run."""

    horizon_ns: int
    finished_ns: int
    steps: int
    steps_per_actor: Dict[int, int] = field(default_factory=dict)
    flips_seen: int = 0


class Engine:
    """Min-clock cooperative scheduler over a shared system."""

    def __init__(self, system: "System", actors: Sequence[Actor]) -> None:
        if not actors:
            raise ValueError("need at least one actor")
        self.system = system
        self.actors = list(actors)

    def run(self, horizon_ns: int, start_ns: int = 0) -> EngineResult:
        """Run every actor until each local clock passes the horizon."""
        if horizon_ns < 1:
            raise ValueError("horizon_ns must be >= 1")
        deadline = start_ns + horizon_ns
        actors = self.actors
        system = self.system
        obs = getattr(system, "obs", None)
        sampler = obs.sampler if obs is not None else None
        profiler = obs.profiler if obs is not None else None
        invariants = getattr(system, "invariants", None)
        # With sampling off the sentinel keeps the per-step cost at one
        # integer-vs-inf compare; with it on, `next_sample` hoists the
        # sampler's boundary out of the object.
        next_sample = sampler.next_at if sampler is not None else float("inf")
        # (clock, index) heap: pops the smallest clock, then the lowest
        # index — the same order the previous O(actors) min-scan chose.
        heap: List[tuple] = [(start_ns, i) for i in range(len(actors))]
        steps = 0
        per_actor: Dict[int, int] = {i: 0 for i in range(len(actors))}
        flips_seen = 0
        while True:
            now, index = heap[0]
            if now >= deadline:
                break
            if now >= next_sample:
                next_sample = sampler.sample(now)
            finished = actors[index].step(now)
            # A stuck actor (e.g. non-viable attack plan) must still
            # advance or the loop would spin forever.
            heapq.heapreplace(
                heap, (finished if finished > now else now + 1, index)
            )
            steps += 1
            per_actor[index] += 1
            if system.has_pending_flips():
                if profiler is not None:
                    start = perf_counter()
                    flips_seen += len(system.drain_flips())
                    profiler.add("drain", perf_counter() - start)
                else:
                    flips_seen += len(system.drain_flips())
                # invariants ride the drain cadence: checks run only
                # when something happened, so quiet steps stay free
                if invariants is not None:
                    invariants.check(now)
        # let the controller retire refreshes up to the deadline
        system.controller.advance_to(deadline)
        if system.has_pending_flips():
            flips_seen += len(system.drain_flips())
        if invariants is not None:
            # closing check so even flip-free runs are audited once
            invariants.check(deadline)
        if sampler is not None:
            # closing sample so even sub-interval runs yield a series
            sampler.sample(deadline)
        return EngineResult(
            horizon_ns=horizon_ns,
            finished_ns=max(clock for clock, _ in heap),
            steps=steps,
            steps_per_actor=per_actor,
            flips_seen=flips_seen,
        )
