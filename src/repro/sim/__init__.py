"""Simulation assembly: configs, the built platform, the cooperative
engine, and run metrics."""

from repro.sim.config import (
    DEFAULT_SCALE,
    SystemConfig,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)
from repro.sim.engine import Engine, EngineResult
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.results import (
    compare,
    load_metrics,
    regression_check,
    save_metrics,
)
from repro.sim.system import DomainHandle, System, build_system

__all__ = [
    "DEFAULT_SCALE",
    "DomainHandle",
    "Engine",
    "EngineResult",
    "RunMetrics",
    "compare",
    "load_metrics",
    "regression_check",
    "save_metrics",
    "System",
    "SystemConfig",
    "build_system",
    "collect_metrics",
    "ideal_platform",
    "legacy_platform",
    "proposed_platform",
]
