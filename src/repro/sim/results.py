"""Result persistence: save run metrics as JSON, reload, and compare.

Long simulation campaigns (the E-series sweeps) want their numbers kept
and diffed across code changes.  ``save_metrics``/``load_metrics`` are a
plain JSON round-trip of :class:`~repro.sim.metrics.RunMetrics`;
``compare`` produces a per-field delta report with tolerances, which the
regression helper turns into a pass/fail verdict.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.metrics import RunMetrics

#: metric fields compared exactly (security must not drift at all)
EXACT_FIELDS = ("cross_domain_flips", "intra_domain_flips", "total_flips")
#: metric fields compared within a relative tolerance (performance noise)
TOLERANT_FIELDS = (
    "elapsed_ns",
    "requests",
    "acts",
    "average_latency_ns",
    "energy_proxy",
)


def metrics_to_dict(metrics: RunMetrics) -> Dict:
    """Serialize to a plain JSON-compatible dict."""
    return dataclasses.asdict(metrics)


def metrics_from_dict(payload: Dict) -> RunMetrics:
    """Inverse of :func:`metrics_to_dict`."""
    field_names = {field.name for field in dataclasses.fields(RunMetrics)}
    unknown = set(payload) - field_names
    if unknown:
        raise ValueError(f"unknown metric fields: {sorted(unknown)}")
    return RunMetrics(**payload)


def save_metrics(
    metrics: Union[RunMetrics, List[RunMetrics]], path: Union[str, Path]
) -> None:
    """Write one or many metrics records to a JSON file."""
    records = metrics if isinstance(metrics, list) else [metrics]
    payload = [metrics_to_dict(record) for record in records]
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_metrics(path: Union[str, Path]) -> List[RunMetrics]:
    """Read metrics records back from a JSON file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError("metrics file must contain a JSON list")
    return [metrics_from_dict(record) for record in payload]


@dataclass(frozen=True)
class FieldDelta:
    """One field's old-vs-new comparison."""

    field: str
    old: float
    new: float
    within_tolerance: bool

    @property
    def relative_change(self) -> float:
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / self.old


def compare(
    old: RunMetrics, new: RunMetrics, tolerance: float = 0.10
) -> List[FieldDelta]:
    """Field-by-field comparison: security fields exact, performance
    fields within ``tolerance`` relative change."""
    deltas: List[FieldDelta] = []
    for field in EXACT_FIELDS:
        old_value = getattr(old, field)
        new_value = getattr(new, field)
        deltas.append(
            FieldDelta(field, old_value, new_value, old_value == new_value)
        )
    for field in TOLERANT_FIELDS:
        old_value = float(getattr(old, field))
        new_value = float(getattr(new, field))
        if old_value == 0:
            ok = new_value == 0
        else:
            ok = abs(new_value - old_value) / abs(old_value) <= tolerance
        deltas.append(FieldDelta(field, old_value, new_value, ok))
    return deltas


def regression_check(
    baseline_path: Union[str, Path],
    current: List[RunMetrics],
    tolerance: float = 0.10,
) -> Tuple[bool, List[str]]:
    """Compare current runs against a saved baseline by label.

    Returns ``(passed, problems)``.  Labels present on only one side are
    reported as problems; matched labels are compared field-wise.
    """
    baseline = {record.label: record for record in load_metrics(baseline_path)}
    current_by_label = {record.label: record for record in current}
    problems: List[str] = []
    for label in sorted(set(baseline) ^ set(current_by_label)):
        problems.append(f"label {label!r} present on only one side")
    for label in sorted(set(baseline) & set(current_by_label)):
        for delta in compare(baseline[label], current_by_label[label], tolerance):
            if not delta.within_tolerance:
                problems.append(
                    f"{label}/{delta.field}: {delta.old} -> {delta.new}"
                )
    return not problems, problems
