"""System configuration: one declarative object builds a whole platform.

A config pins every degree of freedom an experiment sweeps: DRAM
generation (MAC/blast radius), simulation scale, address-mapping scheme,
allocation policy, which proposed primitives the hardware exposes, ACT
counter configuration, cache shape, internal row remapping, and the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.core.primitives import PrimitiveSet
from repro.hostos.allocator import AllocationPolicy

if TYPE_CHECKING:  # pragma: no cover - annotation only; the faults
    # package is imported lazily by System to avoid a config<->faults cycle
    from repro.faults.config import FaultConfig

#: valid values for :attr:`SystemConfig.invariant_level`
INVARIANT_LEVELS = ("off", "cheap", "deep")

#: Default scale factor: refresh window and MAC shrink by this much so a
#: full window is a few hundred microseconds of simulated time instead of
#: 64 ms.  Ratios (ACTs-to-flip vs ACTs-per-window) are preserved.
DEFAULT_SCALE = 64


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`~repro.sim.system.System`."""

    # DRAM
    generation: str = "ddr4-new"
    scale: int = DEFAULT_SCALE
    remap_fraction: float = 0.0  # DRAM-internal row remaps (§4.1 threat)
    remap_within_subarray: bool = False

    # Memory controller
    mapping: str = "cacheline-interleave"
    act_threshold: int = 1 << 20  # effectively "interrupts off" by default
    precise_act_interrupts: bool = False
    act_reset_jitter: int = 0
    page_policy: str = "open"  # "open" or "closed" row-buffer policy
    channels: int = 1  # overrides the preset geometry's channel count
    # Refresh-rate scaling: every row refreshed this many times per
    # (scaled) retention window — the industry's blunt countermeasure,
    # modelled so E5 can show it cannot keep up with density (§3).
    refresh_multiplier: int = 1
    # "all-bank" (REFab) or "per-bank" (REFpb) refresh bursts
    refresh_mode: str = "all-bank"

    # Platform capabilities
    primitives: PrimitiveSet = field(default_factory=PrimitiveSet.none)

    # Host OS
    allocation_policy: AllocationPolicy = AllocationPolicy.DEFAULT
    page_bytes: int = 4096

    # LLC
    cache_sets: int = 256
    cache_ways: int = 8
    max_locked_ways: int = 2

    # Reproducibility
    seed: int = 1234

    # Fault injection & invariant checking (repro.faults).  ``faults``
    # describes a degraded-hardware scenario (None = healthy hardware);
    # ``invariant_level`` arms the bookkeeping checkers: "off" (free),
    # "cheap" (polled at drain points), or "deep" (inline hot-path
    # probes — for debugging and the fault matrix, not benchmarks).
    faults: Optional["FaultConfig"] = None
    invariant_level: str = "off"

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if not 0.0 <= self.remap_fraction <= 1.0:
            raise ValueError("remap_fraction must be in [0, 1]")
        if self.page_bytes < 64:
            raise ValueError("page_bytes must be >= one cache line")
        if self.page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page policy {self.page_policy!r}")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.refresh_multiplier < 1:
            raise ValueError("refresh_multiplier must be >= 1")
        if self.refresh_mode not in ("all-bank", "per-bank"):
            raise ValueError(f"unknown refresh mode {self.refresh_mode!r}")
        if self.invariant_level not in INVARIANT_LEVELS:
            raise ValueError(
                f"unknown invariant level {self.invariant_level!r}; "
                f"known: {INVARIANT_LEVELS}"
            )

    # ------------------------------------------------------------------
    # Named variants used across experiments
    # ------------------------------------------------------------------

    def with_primitives(self, primitives: PrimitiveSet) -> "SystemConfig":
        return replace(self, primitives=primitives)

    def with_mapping(self, mapping: str) -> "SystemConfig":
        return replace(self, mapping=mapping)

    def with_policy(self, policy: AllocationPolicy) -> "SystemConfig":
        return replace(self, allocation_policy=policy)

    def with_generation(self, generation: str) -> "SystemConfig":
        return replace(self, generation=generation)


def legacy_platform(**overrides) -> SystemConfig:
    """Today's hardware: conventional interleaving, imprecise counters,
    no proposed primitives."""
    return SystemConfig(**overrides)


def proposed_platform(**overrides) -> SystemConfig:
    """The paper's platform (§4): all MC primitives, subarray-isolated
    interleaving available, precise interrupts on."""
    defaults = dict(
        mapping="subarray-isolated",
        allocation_policy=AllocationPolicy.SUBARRAY_AWARE,
        primitives=PrimitiveSet.proposed(),
        precise_act_interrupts=True,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def ideal_platform(**overrides) -> SystemConfig:
    """§5's long-term world: proposed platform plus DRAM cooperation."""
    defaults = dict(
        mapping="subarray-isolated",
        allocation_policy=AllocationPolicy.SUBARRAY_AWARE,
        primitives=PrimitiveSet.ideal(),
        precise_act_interrupts=True,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)
