"""The assembled platform: DRAM + MC + CPU + host OS, built from a config.

``System`` owns the wiring that the paper describes in prose: the
allocator's row-ownership map feeds the disturbance oracle's flip
attribution (through the DRAM-internal remap), the ACT counters deliver
interrupts to host-OS defenses, the ISA surface checks primitives, and
enclaves observe flips landing in their memory.

``DomainHandle`` is the tenant-facing convenience: create a domain with
N pages and you get a contiguous *virtual* address space backed by
policy-placed frames, plus helpers to reach its rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.primitives import Primitive, PrimitiveSet
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core import Core
from repro.cpu.dma import DmaEngine
from repro.cpu.isa import ExecutionContext, IsaSurface
from repro.cpu.mmu import Mmu
from repro.dram.data import DataPlane
from repro.dram.device import DramDevice
from repro.dram.disturbance import BitFlip
from repro.dram.presets import by_name
from repro.dram.remap import RowRemapper
from repro.hostos.allocator import AllocationPolicy, PageAllocator
from repro.hostos.domains import DomainRegistry, TrustDomain
from repro.hostos.enclave import EnclaveRuntime
from repro.mc.address_map import make_mapper
from repro.mc.controller import MemoryController
from repro.obs.profiler import PhaseProfiler
from repro.obs.runtime import Observability, attach_ambient
from repro.sim.config import SystemConfig

RowKey = Tuple[int, int, int, int]


@dataclass
class DomainHandle:
    """A tenant plus its allocated memory, addressed virtually."""

    system: "System"
    domain: TrustDomain
    frames: List[int]

    @property
    def asid(self) -> int:
        return self.domain.asid

    @property
    def pages(self) -> int:
        return len(self.frames)

    @property
    def lines_per_page(self) -> int:
        return self.system.mmu.lines_per_page

    @property
    def total_lines(self) -> int:
        return self.pages * self.lines_per_page

    def virtual_line(self, page: int, offset: int = 0) -> int:
        if not 0 <= page < self.pages:
            raise ValueError(f"page {page} out of range")
        if not 0 <= offset < self.lines_per_page:
            raise ValueError(f"offset {offset} out of range")
        return page * self.lines_per_page + offset

    def physical_line(self, virtual_line: int) -> int:
        return self.system.mmu.translate_line(self.asid, virtual_line)

    def rows(self) -> FrozenSet[RowKey]:
        """All logical DRAM rows holding this domain's data."""
        rows = set()
        for frame in self.frames:
            rows.update(self.system.mapper.rows_of_frame(frame))
        return frozenset(rows)

    def write(self, virtual_line: int, data: bytes, now: int = 0) -> int:
        """Store bytes at a virtual line (through the timing model and
        the data plane); returns completion time."""
        outcome = self.system.core.store(self.asid, virtual_line, now)
        self.system.data.write(self.physical_line(virtual_line), data)
        return outcome.done_at_ns

    def read(self, virtual_line: int, now: int = 0) -> Tuple[bytes, int]:
        """Read bytes at a virtual line; returns (data, completion time).
        Corruption from Rowhammer flips is visible here."""
        outcome = self.system.core.load(self.asid, virtual_line, now)
        return (
            self.system.data.read(self.physical_line(virtual_line)),
            outcome.done_at_ns,
        )

    def grow(self, pages: int) -> List[int]:
        """Allocate and map additional pages; returns the new frames."""
        new_frames = self.system.allocator.allocate(self.asid, pages)
        table = self.system.mmu.table(self.asid)
        first_vpage = self.pages
        for index, frame in enumerate(new_frames):
            table.map(first_vpage + index, frame)
        self.frames.extend(new_frames)
        return new_frames


class System:
    """One simulated platform."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.obs = Observability()
        self.rng = random.Random(config.seed)
        self.preset = by_name(config.generation).scaled(config.scale)
        geometry = self.preset.geometry
        if config.channels != geometry.channels:
            from dataclasses import replace as _replace

            geometry = _replace(geometry, channels=config.channels)

        remapper = (
            RowRemapper.random_swaps(
                geometry,
                config.remap_fraction,
                rng=random.Random(config.seed ^ 0x5EED),
                within_subarray=config.remap_within_subarray,
            )
            if config.remap_fraction > 0
            else RowRemapper.identity(geometry)
        )
        timings = self.preset.timings
        if config.refresh_multiplier > 1:
            # Refresh-rate increase: the retention window (and with it
            # the attack window and MAC) is a physical property and
            # stays put; the module simply sweeps every row
            # ``refresh_multiplier`` times within it, paying
            # proportionally more REF commands (tREFI shrinks, floored
            # so bursts never overlap).
            from dataclasses import replace as _replace_timings

            timings = _replace_timings(
                timings,
                tREFI=max(
                    timings.tREFI // config.refresh_multiplier,
                    timings.tRFC + 1,
                ),
            )
        self.device = DramDevice(
            geometry=geometry,
            timings=timings,
            profile=self.preset.profile,
            remapper=remapper,
            rng=random.Random(config.seed ^ 0xD1A),
            sweep_multiplier=config.refresh_multiplier,
            refresh_mode=config.refresh_mode,
        )
        self.mapper = make_mapper(config.mapping, geometry, config.page_bytes)
        if config.mapping == "subarray-isolated":
            config.primitives.require(Primitive.SUBARRAY_ISOLATED_INTERLEAVING)
        self.controller = MemoryController(
            self.device,
            self.mapper,
            act_threshold=config.act_threshold,
            precise_interrupts=config.precise_act_interrupts,
            reset_jitter=config.act_reset_jitter,
            page_policy=config.page_policy,
            rng=random.Random(config.seed ^ 0xC0DE),
            trace=self.obs.trace,
            # per-channel jitter RNGs derive as ``seed ^ channel`` so no
            # two channels share an overflow-jitter sequence (E10)
            counter_seed=config.seed,
        )
        self.cache = SetAssociativeCache(
            sets=config.cache_sets,
            ways=config.cache_ways,
            max_locked_ways=config.max_locked_ways,
        )
        self.mmu = Mmu(
            lines_per_page=config.page_bytes // geometry.cacheline_bytes
        )
        self.core = Core(self.mmu, self.cache, self.controller)
        self.isa = IsaSurface(self.mmu, self.controller, config.primitives)
        self.registry = DomainRegistry()
        self.allocator = PageAllocator(
            self.mapper,
            policy=config.allocation_policy,
            guard_radius=self.preset.profile.blast_radius,
        )
        self.enclaves: Dict[int, EnclaveRuntime] = {}
        self.data = DataPlane(
            geometry.cacheline_bytes, seed=config.seed ^ 0xDA7A
        )
        self.host_context = ExecutionContext(asid=0, host=True)
        self._flip_cursor = 0
        #: defenses attached to this platform (Defense.attach appends);
        #: the invariant suite cross-checks their counters against the
        #: metrics registry
        self.defenses: List[object] = []
        # attribution: internal row -> logical row -> owning domains
        self.device.tracker.set_domain_lookup(self._domains_of_internal_row)
        # every architecturally visible counter registers here; snapshots
        # (and the time-series sampler) read the registry, never fields
        self.obs.metrics.register_gauges("mc", self.controller.stats.snapshot)
        self.obs.metrics.register_gauges(
            "cache",
            lambda: {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
            },
        )
        self.obs.metrics.register_gauges(
            "cache.addrmap", self.mapper.memo_counters
        )
        self.obs.metrics.register_gauges(
            "cache.tlb",
            lambda: {
                "hit": self.mmu.tlb.hits,
                "miss": self.mmu.tlb.misses,
                "evict": self.mmu.tlb.evictions,
            },
        )
        self.obs.metrics.register_gauges(
            "cache.l2",
            lambda: {"bulk_hits": self.cache.bulk_hits},
        )
        #: accesses the columnar front end had to produce per element
        #: (pointer_chase and friends) instead of as vector columns —
        #: the frontend smoke fails if this moves for bulk-capable kinds
        self.gen_fallbacks = self.obs.metrics.counter("gen.scalar_fallbacks")
        # Fault plane and invariant suite (repro.faults) — built late so
        # their hooks and probes see the fully wired controller/device,
        # and imported lazily to keep sim<->faults import-cycle-free.
        self.faults = None
        if config.faults is not None and config.faults.enabled:
            from repro.faults.plane import FaultPlane

            self.faults = FaultPlane(config.faults, system_seed=config.seed)
            self.faults.attach(self)
        self.invariants = None
        if config.invariant_level != "off":
            from repro.faults.invariants import InvariantSuite

            self.invariants = InvariantSuite(
                self, level=config.invariant_level
            )
        # pick up an ambient `repro.obs.runtime.observe(...)` context, if
        # one is active (the trace CLI and replication runners use this)
        attach_ambient(self)

    @property
    def primitives(self) -> PrimitiveSet:
        return self.config.primitives

    @property
    def geometry(self):
        return self.device.geometry

    @property
    def timings(self):
        return self.device.timings

    @property
    def profile(self):
        return self.device.profile

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def enable_profiling(
        self, profiler: Optional[PhaseProfiler] = None
    ) -> PhaseProfiler:
        """Opt into per-phase wall-clock accounting: routes the request
        path through the controller's timed twin and wraps the
        disturbance oracle so its share is attributed separately.
        Results are identical; only host-side clocks are read."""
        profiler = profiler if profiler is not None else PhaseProfiler()
        self.obs.profiler = profiler
        self.controller.enable_profiling(profiler)
        tracker = self.device.tracker
        original = tracker.on_activate
        import time as _time

        def timed_on_activate(address, time_ns, domain=None):
            start = _time.perf_counter()
            try:
                return original(address, time_ns, domain)
            finally:
                profiler.add("disturbance", _time.perf_counter() - start)

        tracker.on_activate = timed_on_activate  # type: ignore[method-assign]
        return profiler

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------

    def create_domain(
        self, name: str, pages: int, enclave: bool = False,
        integrity_checked: bool = True,
    ) -> DomainHandle:
        """Register a tenant, allocate ``pages`` frames under the active
        policy, and map them contiguously into its virtual space."""
        domain = self.registry.create(name, enclave=enclave)
        frames = self.allocator.allocate(domain.asid, pages) if pages else []
        table = self.mmu.table(domain.asid)
        for virtual_page, frame in enumerate(frames):
            table.map(virtual_page, frame)
        handle = DomainHandle(self, domain, frames)
        if enclave:
            self.enclaves[domain.asid] = EnclaveRuntime(
                domain, integrity_checked=integrity_checked
            )
        return handle

    def dma_engine(self, handle: DomainHandle) -> DmaEngine:
        """A bus-mastering device owned by the tenant."""
        return DmaEngine(self.controller, domain=handle.asid)

    # ------------------------------------------------------------------
    # Flip routing and oracle access
    # ------------------------------------------------------------------

    def drain_flips(self) -> List[BitFlip]:
        """New flips since the previous drain; forwards each to any
        enclave whose memory it hit.  Engines call this every step."""
        flips = self.device.tracker.flips
        fresh = flips[self._flip_cursor :]
        self._flip_cursor = len(flips)
        for flip in fresh:
            for enclave in self.enclaves.values():
                enclave.observe_flip(flip)
            self._apply_flip_to_data(flip)
        return fresh

    def has_pending_flips(self) -> bool:
        """True when ACTs since the last drain produced new flips — a
        cheap guard so hot loops only pay for :meth:`drain_flips` when
        there is something to drain."""
        return len(self.device.tracker.flips) > self._flip_cursor

    def all_flips(self) -> List[BitFlip]:
        return list(self.device.tracker.flips)

    def cross_domain_flips(self) -> List[BitFlip]:
        return self.device.tracker.cross_domain_flips()

    def intra_domain_flips(self) -> List[BitFlip]:
        return self.device.tracker.intra_domain_flips()

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def row_of_physical_line(self, line: int) -> RowKey:
        return self.mapper.line_to_ddr(line).row_key()

    def some_line_in_row(self, row_key: RowKey) -> Optional[int]:
        """A physical line living in the given logical row, if any is
        currently mapped (used by software defenses to reach a row)."""
        channel, rank, bank, row = row_key
        from repro.dram.geometry import DdrAddress

        for column in range(self.geometry.columns_per_row):
            address = DdrAddress(channel, rank, bank, row, column)
            try:
                return self.mapper.ddr_to_line(address)
            except KeyError:
                continue
        return None

    def lines_in_row(self, row_key: RowKey) -> List[int]:
        """Every currently-mapped physical line in the given logical
        row (empty for rows no frame occupies)."""
        channel, rank, bank, row = row_key
        from repro.dram.geometry import DdrAddress

        lines = []
        for column in range(self.geometry.columns_per_row):
            address = DdrAddress(channel, rank, bank, row, column)
            try:
                lines.append(self.mapper.ddr_to_line(address))
            except KeyError:
                continue
        return lines

    def frames_in_row(self, row_key: RowKey) -> FrozenSet[int]:
        """Every physical frame with at least one line in the given
        logical row (interleaving packs many frames into one row)."""
        channel, rank, bank, row = row_key
        from repro.dram.geometry import DdrAddress

        frames = set()
        for column in range(self.geometry.columns_per_row):
            address = DdrAddress(channel, rank, bank, row, column)
            try:
                line = self.mapper.ddr_to_line(address)
            except KeyError:
                continue
            frames.add(self.mapper.frame_of_line(line))
        return frozenset(frames)

    def logical_neighbor_rows(self, row_key: RowKey, radius: int) -> List[RowKey]:
        """Logically adjacent rows within ``radius`` (same bank,
        subarray-clipped) — what software *believes* the victims are."""
        channel, rank, bank, row = row_key
        return [
            (channel, rank, bank, neighbor)
            for neighbor in self.geometry.neighbors_within(row, radius)
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_flip_to_data(self, flip: BitFlip) -> None:
        """Corrupt stored bytes for one flip: translate the internal
        victim row back to its logical identity and damage one written
        line there."""
        channel, rank, bank, internal_row = flip.victim
        from repro.dram.geometry import DdrAddress

        bank_index = self.geometry.bank_index(
            DdrAddress(channel, rank, bank, 0, 0)
        )
        logical_row = self.device.remapper.to_logical(bank_index, internal_row)
        candidates = self.lines_in_row((channel, rank, bank, logical_row))
        if candidates:
            self.data.corrupt_one_of(candidates, flip.flipped_bits)

    def _domains_of_internal_row(self, internal_key: RowKey) -> FrozenSet[int]:
        """Flip attribution: translate the internal row back to its
        logical identity, then ask the allocator who owns data there."""
        channel, rank, bank, internal_row = internal_key
        from repro.dram.geometry import DdrAddress

        bank_index = self.geometry.bank_index(
            DdrAddress(channel, rank, bank, 0, 0)
        )
        logical_row = self.device.remapper.to_logical(bank_index, internal_row)
        return self.allocator.domains_in_row((channel, rank, bank, logical_row))


def build_system(config: Optional[SystemConfig] = None, **overrides) -> System:
    """Build a platform from a config (or keyword overrides)."""
    if config is None:
        config = SystemConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return System(config)
