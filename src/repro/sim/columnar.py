"""Struct-of-arrays request batches for the columnar fast path.

The object request path moves one :class:`~repro.mc.controller.MemoryRequest`
at a time through the controller; every request costs a frozen-dataclass
allocation plus per-field attribute loads.  A :class:`ColumnarBatch` holds
the same information as parallel ``array``-module columns — one C-typed
array per field — so producers append plain ints and the consumer
(:meth:`MemoryController.submit_columnar`) iterates machine words instead
of objects.  This is the last structural step before array/numpy-backed
kernels: the batch layout is already the one a vectorised backend wants.

Columns:

``line``      (int64)  physical cache-line index
``is_write``  (int8)   1 = write, 0 = read
``issue_ns``  (int64)  request issue time
``domain``    (int64)  trust-domain id; ``-1`` encodes "no domain"

The object path stays the reference implementation: a batch converts
losslessly to a list of :class:`MemoryRequest` via :meth:`to_requests`,
which the differential tests (and the controller's traced/profiled slow
path) use to pin bit-identical behaviour.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.mc.controller import MemoryRequest

#: sentinel stored in the ``domain`` column for "no domain" (``None``)
NO_DOMAIN = -1


class ColumnarBatch:
    """A resizable struct-of-arrays buffer of memory requests.

    Append-only between :meth:`clear` calls; producers are expected to
    reuse one batch per issue window (`clear` keeps the allocated column
    storage, so steady-state appends never reallocate).
    """

    __slots__ = ("line", "is_write", "issue_ns", "domain")

    def __init__(self) -> None:
        self.line = array("q")
        self.is_write = array("b")
        self.issue_ns = array("q")
        self.domain = array("q")

    def __len__(self) -> int:
        return len(self.line)

    def append(
        self,
        line: int,
        is_write: bool,
        issue_ns: int,
        domain: Optional[int] = None,
    ) -> None:
        """Append one request.  Validation mirrors
        ``MemoryRequest.__post_init__`` so the two paths reject exactly
        the same inputs."""
        if issue_ns < 0:
            raise ValueError("request time must be >= 0")
        if line < 0:
            raise ValueError("physical_line must be >= 0")
        self.line.append(line)
        self.is_write.append(1 if is_write else 0)
        self.issue_ns.append(issue_ns)
        self.domain.append(NO_DOMAIN if domain is None else domain)

    def clear(self) -> None:
        """Empty the batch, keeping the column storage for reuse."""
        del self.line[:]
        del self.is_write[:]
        del self.issue_ns[:]
        del self.domain[:]

    def load_window(
        self,
        line_bytes: bytes,
        write_bytes: bytes,
        issue_ns: int,
        domain,
        count: int,
    ) -> None:
        """Rebind the whole batch to one pre-generated window at C speed.

        ``line_bytes``/``write_bytes`` are raw little-endian int64/int8
        column bytes (``numpy.ndarray.tobytes()`` from the bulk
        generators — already validated upstream by the generator and the
        MMU, so the per-element checks of :meth:`append` are not re-run);
        ``issue_ns`` is the window's shared issue time and ``domain`` is
        either one domain id applied to every element or a prebuilt
        ``array('q')`` column bound as-is (the shared-queue runner reuses
        one interleave template per window).
        """
        if issue_ns < 0:
            raise ValueError("request time must be >= 0")
        line = array("q")
        line.frombytes(line_bytes)
        is_write = array("b")
        is_write.frombytes(write_bytes)
        if len(line) != count or len(is_write) != count:
            raise ValueError("column byte lengths disagree with count")
        self.line = line
        self.is_write = is_write
        self.issue_ns = array("q", (issue_ns,)) * count
        if isinstance(domain, array):
            if len(domain) != count:
                raise ValueError("domain column length disagrees with count")
            self.domain = domain
        else:
            self.domain = array(
                "q", (NO_DOMAIN if domain is None else domain,)
            ) * count

    # ------------------------------------------------------------------
    # Interop with the object (reference) path
    # ------------------------------------------------------------------

    def to_requests(self) -> "List[MemoryRequest]":
        """Materialise the batch as object requests (reference path)."""
        from repro.mc.controller import MemoryRequest

        domains = self.domain
        return [
            MemoryRequest(
                time_ns=self.issue_ns[i],
                physical_line=self.line[i],
                is_write=bool(self.is_write[i]),
                domain=None if domains[i] == NO_DOMAIN else domains[i],
            )
            for i in range(len(self.line))
        ]

    @classmethod
    def from_requests(
        cls, requests: "Iterable[MemoryRequest]"
    ) -> "ColumnarBatch":
        """Build a batch from object requests (tests / adapters).

        DMA requests are rejected: the columnar layout carries no
        ``is_dma`` column (benign workload traffic is never DMA), so a
        lossy conversion here would silently drop the flag.
        """
        batch = cls()
        for request in requests:
            if request.is_dma:
                raise ValueError(
                    "columnar batches do not carry is_dma; route DMA "
                    "requests through the object path"
                )
            batch.append(
                request.physical_line,
                request.is_write,
                request.time_ns,
                request.domain,
            )
        return batch
