"""Metrics: one summary object per simulation run.

Collects the architecturally visible performance surface (controller and
cache statistics), the oracle's security outcome (flips by domain
relation), and per-defense counters/costs — the three ingredient groups
every experiment table is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.defenses.base import Defense
    from repro.sim.system import System


@dataclass
class RunMetrics:
    """Snapshot of one finished run."""

    label: str
    elapsed_ns: int
    # security (oracle)
    total_flips: int
    cross_domain_flips: int
    intra_domain_flips: int
    # performance (architectural)
    requests: int
    acts: int
    row_hit_rate: float
    average_latency_ns: float
    throttle_stalls_ns: int
    targeted_refreshes: int
    neighbor_refresh_commands: int
    uncore_moves: int
    ref_bursts: int
    energy_proxy: float
    cache_hit_rate: float
    # defenses
    defense_counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    defense_sram_bits: int = 0
    reserved_capacity_fraction: float = 0.0
    # observability: sampled counter series (None unless sampling was on)
    timeseries: Optional[Dict[str, object]] = None

    @property
    def secure(self) -> bool:
        """No cross-domain corruption happened."""
        return self.cross_domain_flips == 0

    def throughput_lines_per_us(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.requests * 1000.0 / self.elapsed_ns

    def slowdown_vs(self, baseline: "RunMetrics") -> float:
        """Elapsed-time ratio against a baseline run of identical work."""
        if baseline.elapsed_ns <= 0:
            return 0.0
        return self.elapsed_ns / baseline.elapsed_ns

    def as_row(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "cross_flips": self.cross_domain_flips,
            "intra_flips": self.intra_domain_flips,
            "requests": self.requests,
            "acts": self.acts,
            "row_hit": round(self.row_hit_rate, 3),
            "avg_lat_ns": round(self.average_latency_ns, 1),
            "stalls_us": round(self.throttle_stalls_ns / 1000.0, 1),
            "refreshes": self.targeted_refreshes + self.neighbor_refresh_commands,
            "moves": self.uncore_moves,
            "energy": round(self.energy_proxy, 0),
            "sram_bits": self.defense_sram_bits,
        }


def collect_metrics(
    system: "System",
    label: str,
    elapsed_ns: Optional[int] = None,
    defenses: Optional[List["Defense"]] = None,
) -> RunMetrics:
    """Snapshot a system after a run.

    The controller/defense counter fields are read through the metrics
    registry rather than straight off ``ControllerStats`` so that the
    registry is provably the single source of truth: every key of
    ``stats.snapshot()`` (and of each attached defense's counters) must
    be covered, which turns a silently dropped statistic into a hard
    error.
    """
    stats = system.controller.stats
    tracker = system.device.tracker
    defenses = defenses or []
    sram = sum(defense.cost().sram_bits for defense in defenses)
    reserved = sum(
        defense.cost().reserved_capacity_fraction for defense in defenses
    )
    obs = getattr(system, "obs", None)
    timeseries: Optional[Dict[str, object]] = None
    if obs is not None:
        registry = obs.metrics
        registry.assert_covers(stats.snapshot().keys(), "mc")
        registry.assert_covers(
            system.mapper.memo_counters().keys(), "cache.addrmap"
        )
        registry.assert_covers(("hit", "miss", "evict"), "cache.tlb")
        registry.assert_covers(("bulk_hits",), "cache.l2")
        for defense in defenses:
            if defense.attached and defense.counters:
                registry.assert_covers(
                    defense.counters.keys(), f"defense.{defense.name}"
                )
        snap = registry.snapshot()
        acts = int(snap["mc.acts"])
        throttle_stalls_ns = int(snap["mc.throttle_stalls_ns"])
        targeted_refreshes = int(snap["mc.targeted_refreshes"])
        neighbor_refresh_commands = int(snap["mc.neighbor_refresh_commands"])
        uncore_moves = int(snap["mc.uncore_moves"])
        ref_bursts = int(snap["mc.ref_bursts"])
        if obs.sampler is not None:
            timeseries = obs.sampler.timeseries.as_dict()
    else:  # bare mocks in unit tests carry no observability bundle
        acts = stats.acts
        throttle_stalls_ns = stats.throttle_stalls_ns
        targeted_refreshes = stats.targeted_refreshes
        neighbor_refresh_commands = stats.neighbor_refresh_commands
        uncore_moves = stats.uncore_moves
        ref_bursts = stats.ref_bursts
    return RunMetrics(
        label=label,
        elapsed_ns=elapsed_ns if elapsed_ns is not None else stats.busy_until_ns,
        total_flips=len(tracker.flips),
        cross_domain_flips=len(tracker.cross_domain_flips()),
        intra_domain_flips=len(tracker.intra_domain_flips()),
        requests=stats.requests,
        acts=acts,
        row_hit_rate=stats.row_hit_rate,
        average_latency_ns=stats.average_latency_ns,
        throttle_stalls_ns=throttle_stalls_ns,
        targeted_refreshes=targeted_refreshes,
        neighbor_refresh_commands=neighbor_refresh_commands,
        uncore_moves=uncore_moves,
        ref_bursts=ref_bursts,
        energy_proxy=stats.energy_proxy(),
        cache_hit_rate=system.cache.hit_rate,
        defense_counters={d.name: dict(d.counters) for d in defenses},
        defense_sram_bits=sram,
        reserved_capacity_fraction=reserved,
        timeseries=timeseries,
    )
