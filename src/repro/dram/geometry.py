"""DRAM organization: channels, ranks, banks, subarrays, rows, columns.

The paper (§2.1) describes modules as sets of banks, each bank a set of
row-column *subarrays* sharing one row buffer.  Subarrays are the unit of
electromagnetic isolation (§4.1): rows in different subarrays of the same
bank cannot disturb each other, which is what makes subarray-isolated
interleaving a sound isolation primitive.

This module defines the static shape of a simulated memory system and the
address arithmetic over it.  All dynamic state (open rows, charge,
disturbance counters) lives elsewhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, slots=True)
class DdrAddress:
    """A DDR *logical* address: the coordinates the memory controller
    speaks to the module (§2.1), as opposed to a CPU physical address.

    ``column`` indexes cache-line-sized slots within a row, matching the
    granularity at which the controller issues RD/WR commands.
    """

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def same_bank(self, other: "DdrAddress") -> bool:
        """True when both addresses land in the same physical bank (and
        therefore contend for one row buffer — the bank-conflict condition
        that forces alternating ACTs during a Rowhammer attack)."""
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
        )

    def bank_key(self) -> Tuple[int, int, int]:
        """Hashable identifier of the encompassing bank."""
        return (self.channel, self.rank, self.bank)

    def row_key(self) -> Tuple[int, int, int, int]:
        """Hashable identifier of the encompassing row."""
        return (self.channel, self.rank, self.bank, self.row)


@dataclass(frozen=True)
class DramGeometry:
    """Static shape of a simulated memory system.

    Defaults model a deliberately small DDR4-like system: large enough to
    exhibit bank-level parallelism and subarray isolation, small enough
    that pure-Python simulation stays fast.  Row size follows the paper's
    "each 8 KB row" (§2.1).
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    subarrays_per_bank: int = 8
    rows_per_subarray: int = 64
    columns_per_row: int = 128  # cache-line slots per row
    cacheline_bytes: int = 64

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 1:
                raise ValueError(f"geometry field {field.name!r} must be >= 1, got {value}")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def row_bytes(self) -> int:
        return self.columns_per_row * self.cacheline_bytes

    @property
    def banks_total(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def rows_total(self) -> int:
        return self.banks_total * self.rows_per_bank

    @property
    def total_bytes(self) -> int:
        return self.rows_total * self.row_bytes

    @property
    def cachelines_total(self) -> int:
        return self.total_bytes // self.cacheline_bytes

    # ------------------------------------------------------------------
    # Subarray arithmetic
    # ------------------------------------------------------------------

    def subarray_of_row(self, row: int) -> int:
        """The subarray index (within a bank) containing ``row``.

        Rows are numbered contiguously within a bank; subarray ``s`` holds
        rows ``[s * rows_per_subarray, (s + 1) * rows_per_subarray)``.
        """
        self._check_row(row)
        return row // self.rows_per_subarray

    def rows_in_subarray(self, subarray: int) -> range:
        """Bank-local row indices belonging to ``subarray``."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise ValueError(f"subarray {subarray} out of range")
        start = subarray * self.rows_per_subarray
        return range(start, start + self.rows_per_subarray)

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        return self.subarray_of_row(row_a) == self.subarray_of_row(row_b)

    def neighbors_within(self, row: int, radius: int) -> Iterator[int]:
        """Bank-local rows within ``radius`` of ``row``, excluding ``row``
        itself, clipped to the *subarray* boundary.

        Subarrays do not share bit lines (§4.1 cites LISA/SALP), so
        disturbance does not cross subarray edges; the blast radius of an
        aggressor stops at its subarray.
        """
        self._check_row(row)
        if radius < 0:
            raise ValueError("radius must be >= 0")
        subarray = self.subarray_of_row(row)
        bounds = self.rows_in_subarray(subarray)
        low = max(bounds.start, row - radius)
        high = min(bounds.stop - 1, row + radius)
        for candidate in range(low, high + 1):
            if candidate != row:
                yield candidate

    # ------------------------------------------------------------------
    # Flat indices (useful for allocators and metrics)
    # ------------------------------------------------------------------

    def bank_index(self, address: DdrAddress) -> int:
        """Flat index of the addressed bank in ``[0, banks_total)``."""
        self._check(address)
        return (
            address.channel * self.ranks_per_channel + address.rank
        ) * self.banks_per_rank + address.bank

    def global_row_index(self, address: DdrAddress) -> int:
        """Flat index of the addressed row in ``[0, rows_total)``."""
        return self.bank_index(address) * self.rows_per_bank + address.row

    def bank_from_index(self, index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`bank_index` → ``(channel, rank, bank)``."""
        if not 0 <= index < self.banks_total:
            raise ValueError(f"bank index {index} out of range")
        bank = index % self.banks_per_rank
        index //= self.banks_per_rank
        rank = index % self.ranks_per_channel
        channel = index // self.ranks_per_channel
        return channel, rank, bank

    def iter_banks(self) -> Iterator[Tuple[int, int, int]]:
        """All ``(channel, rank, bank)`` coordinates in flat-index order."""
        for index in range(self.banks_total):
            yield self.bank_from_index(index)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range [0, {self.rows_per_bank})")

    def _check(self, address: DdrAddress) -> None:
        if not 0 <= address.channel < self.channels:
            raise ValueError(f"channel {address.channel} out of range")
        if not 0 <= address.rank < self.ranks_per_channel:
            raise ValueError(f"rank {address.rank} out of range")
        if not 0 <= address.bank < self.banks_per_rank:
            raise ValueError(f"bank {address.bank} out of range")
        self._check_row(address.row)
        if not 0 <= address.column < self.columns_per_row:
            raise ValueError(f"column {address.column} out of range")
