"""The Rowhammer fault model: activation-induced disturbance of victim rows.

§2.1–2.2 of the paper define the physics we model behaviourally:

* each row withstands a per-module *maximum activation count* (MAC) of
  neighbour ACTs within a refresh interval before its cells may flip;
* victims lie up to ``b`` rows from an aggressor (``b`` = blast radius);
* refreshing a victim — by the periodic REF sweep, by an ACT of the victim
  itself, or by a targeted refresh — repairs it and restarts the race.

We track the accumulated, distance-weighted neighbour-ACT "pressure" on
each victim row since its last refresh.  When the pressure crosses the MAC
the victim flips bits (deterministically by default, optionally with a
probabilistic tail), and the event records which domain hammered which —
the attribution every experiment in the harness keys on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dram.geometry import DdrAddress, DramGeometry

try:  # numpy powers the bulk kernel; the scalar twin runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image ships numpy
    _np = None

#: Below this many ACTs the numpy kernel's array setup costs more than
#: the scalar walk it replaces (event vectors, lexsort, group scan).
#: Measured crossover vs the fused radius-1 scalar twin: ~128 ACTs on
#: two-aggressor attack streams, never reached on scattered streams —
#: large batches still prefer the kernel because pathological batches
#: (many ACTs, few victims) scale with O(groups), not O(acts).
_BULK_MIN_ACTS = 128

RowKey = Tuple[int, int, int, int]


@dataclass(frozen=True, slots=True)
class BitFlip:
    """One disturbance event: a victim row crossed its MAC.

    ``aggressor_domain`` is the domain whose ACT tipped the victim over.
    ``victim_domains`` is the set of domains with data in the victim row
    at that moment — a *set* because conventional interleaving packs
    lines from many pages (hence many trust domains) into one DRAM row,
    which is exactly the isolation problem §4.1 describes.  Empty for
    unallocated rows.

    Cross-domain flips are the attacks the paper's defenses must stop;
    intra-domain flips are the residual that isolation-centric
    mitigations tolerate (§2.2).
    """

    time_ns: int
    victim: RowKey
    aggressor: RowKey
    aggressor_domain: Optional[int]
    victim_domains: FrozenSet[int]
    flipped_bits: int

    @property
    def cross_domain(self) -> bool:
        """The flip corrupted data belonging to some *other* domain."""
        return self.aggressor_domain is not None and any(
            domain != self.aggressor_domain for domain in self.victim_domains
        )

    @property
    def intra_domain(self) -> bool:
        """The flip corrupted the aggressor's own data."""
        return (
            self.aggressor_domain is not None
            and self.aggressor_domain in self.victim_domains
        )


@dataclass(frozen=True)
class DisturbanceProfile:
    """Susceptibility parameters of one DRAM technology node.

    ``mac``            — neighbour ACTs a victim tolerates per refresh window
                         (HC_first in Kim et al. ISCA'20 terms).
    ``blast_radius``   — how many rows away an aggressor disturbs (§2.1).
    ``decay_per_row``  — multiplicative weight per row of distance: an ACT at
                         distance d contributes ``decay_per_row ** (d - 1)``
                         to the victim's pressure.  Distance-1 neighbours
                         always contribute 1.
    ``flip_probability`` — probability that crossing the MAC actually flips
                         bits (1.0 = deterministic threshold model).
    ``max_bits_per_flip`` — upper bound on bits corrupted per event.
    """

    mac: int = 50_000
    blast_radius: int = 1
    decay_per_row: float = 0.5
    flip_probability: float = 1.0
    max_bits_per_flip: int = 4
    # weight-by-distance lookup (index d = distance; [0] unused), derived
    # in __post_init__ so the per-ACT hot loop never exponentiates
    _weights: Tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if self.mac < 1:
            raise ValueError("mac must be >= 1")
        if self.blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        if not 0.0 < self.decay_per_row <= 1.0:
            raise ValueError("decay_per_row must be in (0, 1]")
        if not 0.0 < self.flip_probability <= 1.0:
            raise ValueError("flip_probability must be in (0, 1]")
        if self.max_bits_per_flip < 1:
            raise ValueError("max_bits_per_flip must be >= 1")
        object.__setattr__(
            self,
            "_weights",
            (0.0,) + tuple(
                self.decay_per_row ** (distance - 1)
                for distance in range(1, self.blast_radius + 1)
            ),
        )

    def weight(self, distance: int) -> float:
        """Disturbance contribution of one ACT at ``distance`` rows."""
        if distance < 1 or distance > self.blast_radius:
            return 0.0
        return self._weights[distance]

    def scaled(self, factor: int) -> "DisturbanceProfile":
        """MAC divided by ``factor`` for fast simulation (pair with
        ``DramTimings.scaled`` so the ACTs-vs-window race is preserved)."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        from dataclasses import replace

        return replace(self, mac=max(1, self.mac // factor))


# Maps a (channel, rank, bank, internal_row) key to the set of trust
# domains whose data currently lives in that row.
DomainLookup = Callable[[RowKey], FrozenSet[int]]


class DisturbanceTracker:
    """Per-victim accumulated disturbance since that victim's last refresh.

    The tracker is the ground-truth oracle of the simulation: defenses may
    not read it (real hardware exposes nothing comparable — that opacity is
    the paper's complaint); only the harness does, to count flips.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        profile: DisturbanceProfile,
        rng: Optional[random.Random] = None,
        domain_lookup: Optional[DomainLookup] = None,
    ) -> None:
        self.geometry = geometry
        self.profile = profile
        self._rng = rng or random.Random(0)
        self._domain_lookup = domain_lookup or (lambda row: frozenset())
        # pressure[victim_row_key] -> accumulated weighted ACT count
        self._pressure: Dict[RowKey, float] = {}
        # rows that already flipped this window (flip once until refreshed)
        self._tripped: Dict[RowKey, bool] = {}
        self.flips: List[BitFlip] = []
        self.total_acts: int = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def set_domain_lookup(self, lookup: DomainLookup) -> None:
        """Install the allocator's row→domain map for flip attribution."""
        self._domain_lookup = lookup

    # ------------------------------------------------------------------
    # Event ingestion (called by the DRAM device)
    # ------------------------------------------------------------------

    def on_activate(
        self,
        address: DdrAddress,
        time_ns: int,
        domain: Optional[int] = None,
    ) -> List[BitFlip]:
        """Record an ACT of ``address``'s row; return any flips it caused.

        The activated row itself is refreshed as a side effect (§2.1), so
        its own pressure resets.  Every neighbour within the blast radius
        (clipped at the subarray boundary) accumulates weighted pressure.
        """
        self.total_acts += 1
        channel, rank, bank, row = (
            address.channel, address.rank, address.bank, address.row,
        )
        aggressor_key = (channel, rank, bank, row)
        pressure_map = self._pressure
        tripped = self._tripped
        pressure_map.pop(aggressor_key, None)
        tripped.pop(aggressor_key, None)

        # Inlined subarray-clipped neighbourhood (geometry.neighbors_within
        # semantics) with the precomputed distance-weight table: this loop
        # runs once per ACT and dominates attack-shape profiles.
        profile = self.profile
        rows_per_subarray = self.geometry.rows_per_subarray
        subarray_start = (row // rows_per_subarray) * rows_per_subarray
        weights = profile._weights
        mac = profile.mac
        flips: List[BitFlip] = []
        if profile.blast_radius == 1:
            # Common case (DDR3/4-era profiles): exactly the two adjacent
            # rows, both at weight 1 — no range object, no distance math.
            for victim_row in (row - 1, row + 1):
                if (victim_row < subarray_start
                        or victim_row >= subarray_start + rows_per_subarray):
                    continue
                victim_key = (channel, rank, bank, victim_row)
                pressure = pressure_map.get(victim_key, 0.0) + 1.0
                pressure_map[victim_key] = pressure
                if pressure >= mac and not tripped.get(victim_key):
                    flip = self._maybe_flip(
                        victim_key, aggressor_key, time_ns, domain
                    )
                    if flip is not None:
                        flips.append(flip)
            return flips
        low = max(subarray_start, row - profile.blast_radius)
        high = min(subarray_start + rows_per_subarray - 1,
                   row + profile.blast_radius)
        for victim_row in range(low, high + 1):
            if victim_row == row:
                continue
            victim_key = (channel, rank, bank, victim_row)
            pressure = pressure_map.get(victim_key, 0.0) + weights[
                victim_row - row if victim_row > row else row - victim_row
            ]
            pressure_map[victim_key] = pressure
            if pressure >= mac and not tripped.get(victim_key):
                flip = self._maybe_flip(victim_key, aggressor_key, time_ns, domain)
                if flip is not None:
                    flips.append(flip)
        return flips

    def on_activate_bulk(
        self,
        addresses: Sequence[DdrAddress],
        times: Sequence[int],
        domains: Optional[Sequence[Optional[int]]] = None,
        rows: Optional[Sequence[int]] = None,
        bank_ids: Optional[Sequence[int]] = None,
        out_positions: Optional[List[int]] = None,
    ) -> List[BitFlip]:
        """Record a whole vector of ACTs; return the flips in event order.

        Exactly equivalent to calling :meth:`on_activate` once per
        element — same pressures, same tripped state, same flips in the
        same order, same RNG stream (the property suite pins this
        bit-for-bit).  ``rows``, when given, overrides each address's row
        (the device passes remapped internal rows this way without
        materializing fresh ``DdrAddress`` objects); ``bank_ids``, when
        given, carries each element's flat bank index so the numpy
        kernel builds its arrays from plain ints instead of walking
        address attributes.

        The vector form exists because neighbour accrual dominates
        attack-shape profiles: the numpy kernel replaces the per-ACT
        dict walk with one lexsorted event array and a cumulative sum
        per victim group.  Small batches (and numpy-less installs) run
        the scalar twin instead — behaviour is identical either way.

        ``out_positions``, when given, receives one batch position (the
        index of the causing ACT within ``addresses``) per *returned*
        flip, in lockstep with the returned list — the trace layer uses
        this to interleave flip events back into per-ACT order when
        expanding a bulk record.
        """
        count = len(addresses)
        if count == 0:
            return []
        if _np is None or count < _BULK_MIN_ACTS:
            return self._bulk_scalar_fused(
                addresses, times, domains, rows, count, out_positions
            )
        return self._on_activate_bulk_np(
            addresses, times, domains, rows, count, bank_ids, out_positions
        )

    def _bulk_scalar_fused(
        self,
        addresses: Sequence[DdrAddress],
        times: Sequence[int],
        domains: Optional[Sequence[Optional[int]]],
        rows: Optional[Sequence[int]],
        count: int,
        out_positions: Optional[List[int]] = None,
    ) -> List[BitFlip]:
        """Scalar twin with the per-call overhead of :meth:`on_activate`
        fused out: one loop, maps and profile constants hoisted once.
        Bit-identical to the per-ACT path (same dict operations, same
        RNG draws in the same order)."""
        pressure_map = self._pressure
        tripped = self._tripped
        profile = self.profile
        mac = profile.mac
        radius1 = profile.blast_radius == 1
        blast_radius = profile.blast_radius
        weights = profile._weights
        rows_per_subarray = self.geometry.rows_per_subarray
        maybe_flip = self._maybe_flip
        flips: List[BitFlip] = []
        self.total_acts += count
        for index in range(count):
            address = addresses[index]
            channel = address.channel
            rank = address.rank
            bank = address.bank
            row = rows[index] if rows is not None else address.row
            aggressor_key = (channel, rank, bank, row)
            pressure_map.pop(aggressor_key, None)
            tripped.pop(aggressor_key, None)
            subarray_start = (row // rows_per_subarray) * rows_per_subarray
            if radius1:
                for victim_row in (row - 1, row + 1):
                    if (victim_row < subarray_start or victim_row
                            >= subarray_start + rows_per_subarray):
                        continue
                    victim_key = (channel, rank, bank, victim_row)
                    pressure = pressure_map.get(victim_key, 0.0) + 1.0
                    pressure_map[victim_key] = pressure
                    if pressure >= mac and not tripped.get(victim_key):
                        flip = maybe_flip(
                            victim_key, aggressor_key, times[index],
                            None if domains is None else domains[index],
                        )
                        if flip is not None:
                            flips.append(flip)
                            if out_positions is not None:
                                out_positions.append(index)
                continue
            low = row - blast_radius
            if low < subarray_start:
                low = subarray_start
            high = row + blast_radius
            limit = subarray_start + rows_per_subarray - 1
            if high > limit:
                high = limit
            for victim_row in range(low, high + 1):
                if victim_row == row:
                    continue
                victim_key = (channel, rank, bank, victim_row)
                pressure = pressure_map.get(victim_key, 0.0) + weights[
                    victim_row - row if victim_row > row else row - victim_row
                ]
                pressure_map[victim_key] = pressure
                if pressure >= mac and not tripped.get(victim_key):
                    flip = maybe_flip(
                        victim_key, aggressor_key, times[index],
                        None if domains is None else domains[index],
                    )
                    if flip is not None:
                        flips.append(flip)
                        if out_positions is not None:
                            out_positions.append(index)
        return flips

    def _on_activate_bulk_np(
        self,
        addresses: Sequence[DdrAddress],
        times: Sequence[int],
        domains: Optional[Sequence[Optional[int]]],
        rows: Optional[Sequence[int]],
        count: int,
        bank_ids: Optional[Sequence[int]] = None,
        out_positions: Optional[List[int]] = None,
    ) -> List[BitFlip]:
        """Numpy body of :meth:`on_activate_bulk`.

        Strategy: explode the batch into per-victim *events* — one reset
        at each aggressor's own row, one weighted add per in-subarray
        neighbour — then lexsort by (victim row, batch position) so each
        victim's history is a contiguous, temporally ordered group.
        Groups without a reset reduce to one cumulative sum (a strict
        left fold, so the float stream matches the scalar adds bit for
        bit); groups containing a reset replay their few events exactly.
        MAC crossings are collected as (batch position, victim) pairs and
        handed to ``_maybe_flip`` in scalar call order, preserving the
        RNG stream and the flip log.
        """
        np = _np
        self.total_acts += count
        geometry = self.geometry
        profile = self.profile
        rows_per_subarray = geometry.rows_per_subarray
        rows_per_bank = geometry.rows_per_bank
        banks_per_rank = geometry.banks_per_rank
        ranks_per_channel = geometry.ranks_per_channel

        # Callers that already hold flat columns (the controller's bulk
        # engine defers plain ints per ACT) skip the attribute walks —
        # they are the kernel's dominant fixed cost at small counts.
        if bank_ids is not None:
            bank_flat = np.asarray(bank_ids, dtype=np.int64)
        else:
            channel = np.fromiter(
                (a.channel for a in addresses), np.int64, count
            )
            rank = np.fromiter((a.rank for a in addresses), np.int64, count)
            bank = np.fromiter((a.bank for a in addresses), np.int64, count)
            bank_flat = (
                channel * ranks_per_channel + rank
            ) * banks_per_rank + bank
        if rows is None:
            row = np.fromiter((a.row for a in addresses), np.int64, count)
        else:
            row = np.asarray(rows, dtype=np.int64)
        subarray_start = (row // rows_per_subarray) * rows_per_subarray
        subarray_end = subarray_start + rows_per_subarray
        act_index = np.arange(count, dtype=np.int64)

        key_parts = [bank_flat * rows_per_bank + row]
        idx_parts = [act_index]
        weight_parts = [np.zeros(count)]
        reset_parts = [np.ones(count, dtype=bool)]
        weights = profile._weights
        for distance in range(1, profile.blast_radius + 1):
            weight = weights[distance]
            for side in (-distance, distance):
                victim_row = row + side
                mask = (victim_row >= subarray_start) & (
                    victim_row < subarray_end
                )
                if not mask.any():
                    continue
                kept = int(mask.sum())
                key_parts.append(
                    bank_flat[mask] * rows_per_bank + victim_row[mask]
                )
                idx_parts.append(act_index[mask])
                weight_parts.append(np.full(kept, weight))
                reset_parts.append(np.zeros(kept, dtype=bool))
        event_key = np.concatenate(key_parts)
        event_idx = np.concatenate(idx_parts)
        event_weight = np.concatenate(weight_parts)
        event_reset = np.concatenate(reset_parts)
        order = np.lexsort((event_idx, event_key))
        event_key = event_key[order]
        event_idx = event_idx[order]
        event_weight = event_weight[order]
        event_reset = event_reset[order]

        boundaries = np.flatnonzero(event_key[1:] != event_key[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(event_key)]))
        group_has_reset = np.logical_or.reduceat(event_reset, starts)

        # The walk below touches these element-by-element; list indexing
        # returns cached small ints instead of fresh numpy scalars.
        starts_l = starts.tolist()
        ends_l = ends.tolist()
        group_keys = event_key[starts].tolist()
        has_reset_l = group_has_reset.tolist()
        idx_l = event_idx.tolist()
        weight_l = event_weight.tolist()
        reset_l = event_reset.tolist()

        pressure_map = self._pressure
        tripped = self._tripped
        mac = profile.mac
        #: (batch position, victim key) of every MAC crossing, in the
        #: order the scalar path would have fired them
        candidates: List[Tuple[int, RowKey]] = []
        #: victims whose final state is un-tripped although a crossing
        #: fired earlier in the batch (a reset followed it) — fixed up
        #: after the replay below re-marks them
        trip_reverts: List[RowKey] = []
        for group in range(len(starts_l)):
            start = starts_l[group]
            end = ends_l[group]
            bank_part, victim_row = divmod(group_keys[group], rows_per_bank)
            chan_part, bank_nr = divmod(bank_part, banks_per_rank)
            chan_nr, rank_nr = divmod(chan_part, ranks_per_channel)
            victim_key = (chan_nr, rank_nr, bank_nr, victim_row)
            if not has_reset_l[group]:
                pressure = pressure_map.get(victim_key, 0.0)
                if end - start <= 4:
                    was_tripped = tripped.get(victim_key)
                    crossing = -1
                    for position in range(start, end):
                        pressure += weight_l[position]
                        if (crossing < 0 and not was_tripped
                                and pressure >= mac):
                            crossing = position
                    pressure_map[victim_key] = pressure
                    if crossing >= 0:
                        candidates.append(
                            (idx_l[crossing], victim_key)
                        )
                else:
                    series = np.cumsum(np.concatenate(
                        ((pressure,), event_weight[start:end])
                    ))[1:]
                    pressure_map[victim_key] = float(series[-1])
                    if not tripped.get(victim_key):
                        crossed = np.flatnonzero(series >= mac)
                        if crossed.size:
                            candidates.append((
                                idx_l[start + int(crossed[0])],
                                victim_key,
                            ))
            else:
                in_map = victim_key in pressure_map
                pressure = pressure_map.get(victim_key, 0.0)
                trip = bool(tripped.get(victim_key))
                for position in range(start, end):
                    if reset_l[position]:
                        in_map = False
                        pressure = 0.0
                        trip = False
                        continue
                    pressure += weight_l[position]
                    in_map = True
                    if pressure >= mac and not trip:
                        trip = True
                        candidates.append(
                            (idx_l[position], victim_key)
                        )
                if in_map:
                    pressure_map[victim_key] = pressure
                else:
                    pressure_map.pop(victim_key, None)
                if not trip:
                    trip_reverts.append(victim_key)

        candidates.sort()
        flips: List[BitFlip] = []
        for act, victim_key in candidates:
            address = addresses[act]
            aggressor_key = (
                address.channel, address.rank, address.bank, int(row[act]),
            )
            flip = self._maybe_flip(
                victim_key, aggressor_key, times[act],
                None if domains is None else domains[act],
            )
            if flip is not None:
                flips.append(flip)
                if out_positions is not None:
                    out_positions.append(act)
        for victim_key in trip_reverts:
            tripped.pop(victim_key, None)
        return flips

    def on_refresh(self, row_key: RowKey) -> None:
        """A row was refreshed (REF sweep, targeted refresh, or neighbour
        refresh): its accumulated pressure and tripped state clear."""
        self._reset(row_key)

    # ------------------------------------------------------------------
    # Inspection (harness / oracle use only)
    # ------------------------------------------------------------------

    def pressure_of(self, row_key: RowKey) -> float:
        return self._pressure.get(row_key, 0.0)

    def iter_pressure(self) -> List[Tuple[RowKey, float]]:
        """Snapshot of every victim row carrying pressure (the invariant
        suite polls this; a list, not a view, so checks can run while
        the simulation keeps mutating the map)."""
        return list(self._pressure.items())

    def is_tripped(self, row_key: RowKey) -> bool:
        """Whether the row crossed its MAC (flip logged or suppressed by
        the probabilistic tail) since its last refresh."""
        return bool(self._tripped.get(row_key))

    def headroom_of(self, row_key: RowKey) -> float:
        """Remaining pressure before the row flips."""
        return self.profile.mac - self.pressure_of(row_key)

    def cross_domain_flips(self) -> List[BitFlip]:
        return [flip for flip in self.flips if flip.cross_domain]

    def intra_domain_flips(self) -> List[BitFlip]:
        return [flip for flip in self.flips if flip.intra_domain]

    def clear_flips(self) -> None:
        self.flips.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reset(self, row_key: RowKey) -> None:
        self._pressure.pop(row_key, None)
        self._tripped.pop(row_key, None)

    def _maybe_flip(
        self,
        victim_key: RowKey,
        aggressor_key: RowKey,
        time_ns: int,
        aggressor_domain: Optional[int],
    ) -> Optional[BitFlip]:
        self._tripped[victim_key] = True
        if self.profile.flip_probability < 1.0:
            if self._rng.random() >= self.profile.flip_probability:
                return None
        flip = BitFlip(
            time_ns=time_ns,
            victim=victim_key,
            aggressor=aggressor_key,
            aggressor_domain=aggressor_domain,
            victim_domains=frozenset(self._domain_lookup(victim_key)),
            flipped_bits=self._rng.randint(1, self.profile.max_bits_per_flip),
        )
        self.flips.append(flip)
        return flip
