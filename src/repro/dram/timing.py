"""DDR timing parameters for the command-accurate (not cycle-accurate) model.

Times are integer nanoseconds.  The defaults approximate DDR4-2400; the
absolute values matter less than their ratios, which drive the behaviours
the paper reasons about:

* row-buffer hits are cheaper than misses/conflicts (§2.1, Fig. 1),
* interleaving across banks overlaps ACT latencies (§4.1),
* each row must be refreshed within ``tREFW`` of its last refresh (§2.1),
* every ``tREFI`` the module performs a refresh burst costing ``tRFC``.

``scaled()`` shrinks the refresh window for fast simulation while keeping
every ratio fixed; see DESIGN.md §3 "Scaling note".
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DramTimings:
    """DDR-style timing constraints, in nanoseconds."""

    tCL: int = 14  # CAS latency: column access on an open row
    tRCD: int = 14  # ACT to RD/WR delay
    tRP: int = 14  # PRE to ACT delay
    tRAS: int = 32  # ACT to PRE minimum
    tBL: int = 4  # data-burst occupancy of the channel bus per cache line
    tREFI: int = 7_800  # interval between periodic REF commands
    tRFC: int = 350  # duration of one REF burst (banks unavailable)
    tREFW: int = 64_000_000  # refresh window: every row refreshed this often

    def __post_init__(self) -> None:
        for name in ("tCL", "tRCD", "tRP", "tRAS", "tBL", "tREFI", "tRFC", "tREFW"):
            if getattr(self, name) <= 0:
                raise ValueError(f"timing {name} must be positive")
        if self.tREFI >= self.tREFW:
            raise ValueError("tREFI must be smaller than the refresh window tREFW")
        if self.tRC <= 0:
            raise ValueError("derived tRC must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def tRC(self) -> int:
        """Row cycle time: minimum spacing of two ACTs to one bank."""
        return self.tRAS + self.tRP

    @property
    def row_hit_latency(self) -> int:
        """Request latency when the target row is already open."""
        return self.tCL

    @property
    def row_closed_latency(self) -> int:
        """Request latency when the bank is precharged (row miss)."""
        return self.tRCD + self.tCL

    @property
    def row_conflict_latency(self) -> int:
        """Request latency when another row occupies the buffer."""
        return self.tRP + self.tRCD + self.tCL

    @property
    def refs_per_window(self) -> int:
        """Number of periodic REF commands within one refresh window."""
        return max(1, self.tREFW // self.tREFI)

    def max_acts_per_window(self) -> int:
        """Upper bound on ACTs one bank can issue in a refresh window —
        the physical ceiling an attacker races against (tRC-limited)."""
        return self.tREFW // self.tRC

    # ------------------------------------------------------------------
    # Scaling for fast simulation
    # ------------------------------------------------------------------

    def scaled(self, factor: int) -> "DramTimings":
        """Return timings with the refresh window (and REF interval)
        divided by ``factor``.

        Command-level timings stay untouched, so row-buffer behaviour
        and bank-level parallelism are unaffected.  tREFI shrinks with
        the window (floored at 4x tRFC) so REF-driven defenses keep a
        realistic number of reaction points per window; the device's
        refresh sweep paces itself off tREFW/rows either way.  Pair with
        an equally scaled MAC (see ``DramGenerationPreset``) to preserve
        the attack-vs-refresh race.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self
        new_refw = max(self.tREFW // factor, self.tRC * 16)
        # tREFI shrinks too so defenses that act per REF burst (TRR,
        # refresh sweeps) keep a realistic number of reaction points per
        # window; floored at 4x tRFC so bursts never dominate the bus.
        new_refi = max(self.tREFI // factor, 4 * self.tRFC)
        if new_refi >= new_refw:
            new_refi = max(self.tRFC + 1, new_refw // 16)
        return replace(self, tREFW=new_refw, tREFI=new_refi)
