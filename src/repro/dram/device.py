"""The DRAM module: banks + refresh engine + disturbance physics + the
vendor's (blackbox) in-DRAM mitigation hook.

The device is deliberately *opaque* to the rest of the system, mirroring
the paper's core complaint (§3): the memory controller and host OS see
only command completion times — never the disturbance tracker, never the
internal row remaps, never what the in-DRAM mitigation is doing.  Only
the experiment harness reads the oracle state to count bit flips.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Tuple

from repro.dram.bank import BankState
from repro.dram.commands import CommandKind, DramCommand
from repro.dram.disturbance import BitFlip, DisturbanceProfile, DisturbanceTracker
from repro.dram.geometry import DdrAddress, DramGeometry
from repro.dram.presets import DramGenerationPreset
from repro.dram.remap import RowRemapper
from repro.dram.timing import DramTimings

BankKey = Tuple[int, int, int]


class InDramMitigation(Protocol):
    """What a vendor TRR-style mitigation can observe and do.

    It may sample ACT commands as they arrive and, piggybacking on each
    REF burst (the only time the module controls the banks), refresh the
    *neighbours* of aggressor rows it tracked — the reverse-engineered
    behaviour of deployed TRR.  Being inside the module, it refreshes by
    internal adjacency.
    """

    def on_activate(self, address: DdrAddress, time_ns: int) -> None:
        """Observe (or sample) one ACT."""

    def targets_to_refresh(self, time_ns: int) -> List[Tuple[DdrAddress, int]]:
        """Called during a REF burst; (aggressor, radius) pairs whose
        internal neighbours the mitigation refreshes now."""


class DramDevice:
    """A simulated DRAM module behind one memory controller."""

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timings: Optional[DramTimings] = None,
        profile: Optional[DisturbanceProfile] = None,
        remapper: Optional[RowRemapper] = None,
        mitigation: Optional[InDramMitigation] = None,
        rng: Optional[random.Random] = None,
        sweep_multiplier: int = 1,
        refresh_mode: str = "all-bank",
    ) -> None:
        """``sweep_multiplier``: how many full refresh passes the sweep
        completes per tREFW — the refresh-rate-increase countermeasure
        (every row refreshed m times per retention window instead of
        once).  Pair with a proportionally shorter tREFI to account for
        the extra REF commands.

        ``refresh_mode``: "all-bank" (REFab) blocks every bank for tRFC
        per burst; "per-bank" (DDR4 REFpb) refreshes one bank per burst
        round-robin, blocking only it — for roughly half the per-bank
        blocking time — while the others keep serving.  Same sweep
        guarantee either way."""
        if sweep_multiplier < 1:
            raise ValueError("sweep_multiplier must be >= 1")
        if refresh_mode not in ("all-bank", "per-bank"):
            raise ValueError(f"unknown refresh mode {refresh_mode!r}")
        self.sweep_multiplier = sweep_multiplier
        self.refresh_mode = refresh_mode
        self.geometry = geometry or DramGeometry()
        self.timings = timings or DramTimings()
        self.profile = profile or DisturbanceProfile()
        self.remapper = remapper or RowRemapper.identity(self.geometry)
        self.mitigation = mitigation
        self.tracker = DisturbanceTracker(
            self.geometry, self.profile, rng or random.Random(0)
        )
        self.banks: Dict[BankKey, BankState] = {
            key: BankState(self.timings) for key in self.geometry.iter_banks()
        }
        # (channel, rank, bank) -> flat bank index, precomputed so the
        # per-ACT path skips geometry.bank_index's range validation (all
        # addresses here come from the mapper, valid by construction).
        self._bank_index: Dict[BankKey, int] = {
            key: index for index, key in enumerate(self.geometry.iter_banks())
        }
        # flat-index-aligned view of ``banks`` so column-space callers
        # resolve a bank with one list index instead of a tuple hash
        self.bank_list: List[BankState] = [
            self.banks[key] for key in self.geometry.iter_banks()
        ]
        # Periodic-refresh sweep position (bank-local row index).  All
        # banks refresh in lockstep, as with all-bank REF.  The pointer
        # advances fractionally so every row is refreshed exactly once
        # per tREFW regardless of how geometry and tREFI relate.
        self._refresh_pointer: int = 0
        self._refresh_accum: float = 0.0
        self._rows_per_ref: float = (
            self.geometry.rows_per_bank
            * self.sweep_multiplier
            / self.timings.refs_per_window
        )
        self._next_refresh_bank: int = 0  # per-bank mode rotation
        self._bank_pointers: Dict[BankKey, int] = {
            key: 0 for key in self.banks
        }
        self.ref_bursts: int = 0
        self.targeted_refreshes: int = 0
        self.neighbor_refreshes: int = 0

    @classmethod
    def from_preset(
        cls,
        preset: DramGenerationPreset,
        remapper: Optional[RowRemapper] = None,
        mitigation: Optional[InDramMitigation] = None,
        rng: Optional[random.Random] = None,
    ) -> "DramDevice":
        return cls(
            geometry=preset.geometry,
            timings=preset.timings,
            profile=preset.profile,
            remapper=remapper,
            mitigation=mitigation,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Data access (RD/WR with implied ACT/PRE), called by the controller
    # ------------------------------------------------------------------

    def access(
        self,
        address: DdrAddress,
        now: int,
        domain: Optional[int] = None,
    ) -> Tuple[int, List[BitFlip]]:
        """Service one RD/WR.  Returns ``(data_ready_at, flips_caused)``.

        Row-buffer state is keyed by *logical* row (the buffer belongs to
        the bank, and the controller addresses it logically); disturbance
        physics run on the *internal* row after remapping.
        """
        self.geometry._check(address)
        bank = self.banks[address.bank_key()]
        return self.access_mapped(bank, address, now, domain)

    def access_mapped(
        self,
        bank: "BankState",
        address: DdrAddress,
        now: int,
        domain: Optional[int] = None,
    ) -> Tuple[int, List[BitFlip]]:
        """Hot-path variant of :meth:`access` for mapper-produced
        addresses: the caller already resolved ``bank``, and the address
        mapper only emits coordinates that are valid by construction, so
        the per-request range check is skipped."""
        if bank.open_row != address.row:
            ready = bank.access(address.row, now)
            return ready, self._physical_activate(address, ready, domain)
        return bank.access(address.row, now), []

    def activate(
        self,
        address: DdrAddress,
        now: int,
        domain: Optional[int] = None,
        precharge_after: bool = False,
        refresh_only: bool = False,
    ) -> Tuple[int, List[BitFlip]]:
        """Explicit PRE+ACT(+PRE) of a specific row — the command sequence
        of the paper's ``refresh`` instruction (§4.3).  Refreshes the row
        as a side effect of activation.

        ``refresh_only`` marks a *refresh-path* activation (the refresh
        instruction, PARA/Graphene neighbour refreshes): it pays full
        command timing but adds no disturbance pressure to neighbours,
        consistent with how the REF sweep, TRR, and REF_NEIGHBORS are
        modelled.  The behavioural fault model counts only program-
        controllable activations toward HC_first; a refresh operation's
        own single-activation disturbance is ~1/MAC of a flip at real
        scale — below the model's resolution, and counting it would let
        the *scaled-down* MAC magnify it into an artefact.
        """
        self.geometry._check(address)
        bank = self.banks[address.bank_key()]
        ready = bank.activate(address.row, now)
        if refresh_only:
            bank_index = self.geometry.bank_index(address)
            internal_row = self.remapper.to_internal(bank_index, address.row)
            self.tracker.on_refresh(
                (address.channel, address.rank, address.bank, internal_row)
            )
            flips: List[BitFlip] = []
        else:
            flips = self._physical_activate(address, ready, domain)
        if precharge_after:
            ready = bank.precharge(ready)
        self.targeted_refreshes += 1
        return ready, flips

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh_burst(self, now: int) -> int:
        """One periodic REF burst.

        All-bank mode: blocks every bank for tRFC and sweeps the next
        slice of rows in all of them.  Per-bank mode: blocks one bank
        (round-robin) for half that time and sweeps a proportionally
        larger slice of *its* rows, so the once-per-window guarantee is
        identical while the rest of the module keeps serving.  The
        in-DRAM mitigation gets its chance either way.

        Returns when the refreshed bank(s) become available again.
        """
        self.ref_bursts += 1
        if self.refresh_mode == "per-bank":
            free_at = self._per_bank_burst(now)
        else:
            free_at = now
            for key, bank in self.banks.items():
                free_at = max(free_at, bank.block_for_refresh(now))
            self._refresh_accum += self._rows_per_ref
            rows_now = int(self._refresh_accum)
            self._refresh_accum -= rows_now
            start = self._refresh_pointer
            for offset in range(rows_now):
                logical_row = (start + offset) % self.geometry.rows_per_bank
                for key in self.banks:
                    self._refresh_internal(key, logical_row)
            self._refresh_pointer = (
                start + rows_now
            ) % self.geometry.rows_per_bank
        if self.mitigation is not None:
            for aggressor, radius in self.mitigation.targets_to_refresh(now):
                self._refresh_internal_neighbors(aggressor, radius)
        return free_at

    def _per_bank_burst(self, now: int) -> int:
        """Refresh one bank's next sweep slice; others stay available."""
        keys = list(self.banks)
        key = keys[self._next_refresh_bank % len(keys)]
        self._next_refresh_bank += 1
        bank = self.banks[key]
        start = max(now, bank.busy_until)
        if bank.open_row is not None:
            bank.precharges += 1
            bank.open_row = None
        bank.busy_until = start + max(1, self.timings.tRFC // 2)
        # One bank absorbs the whole module's per-burst row budget when
        # its turn comes, so every bank still completes a full sweep per
        # window: slice = rows_per_ref * number_of_banks, every
        # number_of_banks bursts.
        self._refresh_accum += self._rows_per_ref * len(keys)
        rows_now = int(self._refresh_accum)
        self._refresh_accum -= rows_now
        bank_pointer = self._bank_pointers[key]
        for offset in range(rows_now):
            logical_row = (bank_pointer + offset) % self.geometry.rows_per_bank
            self._refresh_internal(key, logical_row)
        self._bank_pointers[key] = (
            bank_pointer + rows_now
        ) % self.geometry.rows_per_bank
        return bank.busy_until

    def _refresh_internal_neighbors(self, aggressor: DdrAddress, radius: int) -> None:
        """Refresh the internal neighbours of an aggressor row (TRR's
        action during REF; hidden inside tRFC, so no extra timing cost)."""
        bank_index = self.geometry.bank_index(aggressor)
        internal = self.remapper.to_internal(bank_index, aggressor.row)
        for victim_row in self.geometry.neighbors_within(internal, radius):
            self.tracker.on_refresh(
                (aggressor.channel, aggressor.rank, aggressor.bank, victim_row)
            )
            self.neighbor_refreshes += 1

    def ref_neighbors(self, address: DdrAddress, blast_radius: int, now: int) -> int:
        """The paper's proposed REF_NEIGHBORS command (§4.3): the module
        refreshes every potential victim within ``blast_radius`` of the
        given aggressor row, using *internal* adjacency (only the module
        knows it — the command's key advantage over software refresh).

        Returns completion time.  Costs one tRC per refreshed row on the
        target bank only.
        """
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.geometry._check(address)
        key = address.bank_key()
        bank = self.banks[key]
        bank_index = self.geometry.bank_index(address)
        internal_aggressor = self.remapper.to_internal(bank_index, address.row)
        refreshed = 0
        for internal_victim in self.geometry.neighbors_within(
            internal_aggressor, blast_radius
        ):
            self.tracker.on_refresh(
                (address.channel, address.rank, address.bank, internal_victim)
            )
            refreshed += 1
            self.neighbor_refreshes += 1
        busy = max(now, bank.busy_until) + self.timings.tRC * max(1, refreshed)
        bank.busy_until = busy
        if bank.open_row is not None:
            bank.precharges += 1
            bank.open_row = None
        return busy

    # ------------------------------------------------------------------
    # Generic command entry point
    # ------------------------------------------------------------------

    def execute(
        self,
        command: DramCommand,
        now: int,
        domain: Optional[int] = None,
    ) -> Tuple[int, List[BitFlip]]:
        """Dispatch one explicit DDR command.  RD/WR here assume the row
        is handled via :meth:`access`; this entry point exists for tests
        and trace replay."""
        if command.kind in (CommandKind.RD, CommandKind.WR):
            assert command.address is not None
            return self.access(command.address, now, domain)
        if command.kind is CommandKind.ACT:
            assert command.address is not None
            return self.activate(command.address, now, domain)
        if command.kind is CommandKind.PRE:
            assert command.address is not None
            bank = self.banks[command.address.bank_key()]
            return bank.precharge(now), []
        if command.kind is CommandKind.REF:
            return self.refresh_burst(now), []
        if command.kind is CommandKind.REF_NEIGHBORS:
            assert command.address is not None
            return (
                self.ref_neighbors(command.address, command.blast_radius, now),
                [],
            )
        raise ValueError(f"unhandled command kind {command.kind}")

    # ------------------------------------------------------------------
    # Oracle / statistics access (harness only)
    # ------------------------------------------------------------------

    @property
    def flips(self) -> List[BitFlip]:
        return self.tracker.flips

    def total_acts(self) -> int:
        return sum(bank.acts for bank in self.banks.values())

    def row_hit_rate(self) -> float:
        hits = sum(bank.row_hits for bank in self.banks.values())
        total = sum(bank.accesses for bank in self.banks.values())
        return hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _physical_activate(
        self, address: DdrAddress, time_ns: int, domain: Optional[int]
    ) -> List[BitFlip]:
        """Run disturbance physics for one ACT, on the internal row."""
        bank_index = self._bank_index[
            (address.channel, address.rank, address.bank)
        ]
        internal_row = self.remapper.to_internal(bank_index, address.row)
        if internal_row == address.row:
            # Identity remap (the common case): the logical address *is*
            # the internal one, no second DdrAddress needed.
            internal = address
        else:
            internal = DdrAddress(
                address.channel, address.rank, address.bank,
                internal_row, address.column,
            )
        if self.mitigation is not None:
            # The vendor mitigation samples the command bus, i.e. sees the
            # logical row the controller named.
            self.mitigation.on_activate(address, time_ns)
        return self.tracker.on_activate(internal, time_ns, domain)

    def _refresh_internal(self, key: BankKey, logical_row: int) -> None:
        """Refresh one logical row: reset the disturbance pressure of its
        internal location."""
        channel, rank, bank = key
        bank_index = self.geometry.bank_index(
            DdrAddress(channel, rank, bank, 0, 0)
        )
        internal_row = self.remapper.to_internal(bank_index, logical_row)
        self.tracker.on_refresh((channel, rank, bank, internal_row))
