"""DRAM-internal row remapping.

§2.1/§4.1: modules occasionally remap logically-adjacent rows to different
internal locations (e.g. to route around faulty rows at manufacturing
time).  Disturbance physics follow *internal* adjacency, so remaps both
(a) mislead naive software defenses that assume logical adjacency and
(b) threaten subarray isolation if a row lands in another domain's
subarray.  The paper notes internal adjacency can be recovered from
software via hammer templating (the success/failure of Rowhammer attacks),
which experiment E11 exercises.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Optional, Tuple

from repro.dram.geometry import DramGeometry


class RowRemapper:
    """Bijective logical→internal row map, per bank.

    The identity map models a module without remaps.  ``random_swaps``
    builds a map where a fraction of rows have been pairwise swapped with
    another row of the same bank — the simplest model that breaks logical
    adjacency while keeping the map bijective.
    """

    def __init__(self, geometry: DramGeometry) -> None:
        self.geometry = geometry
        # (bank_index, logical_row) -> internal_row; identity if absent
        self._forward: Dict[Tuple[int, int], int] = {}
        self._backward: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, geometry: DramGeometry) -> "RowRemapper":
        return cls(geometry)

    @classmethod
    def random_swaps(
        cls,
        geometry: DramGeometry,
        fraction: float,
        rng: Optional[random.Random] = None,
        within_subarray: bool = False,
    ) -> "RowRemapper":
        """Swap ``fraction`` of each bank's rows with random partners.

        ``within_subarray=True`` confines swaps to the row's own subarray
        (remaps that cannot break subarray isolation); ``False`` allows
        cross-subarray swaps, the case §4.1 flags as a threat.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        rng = rng or random.Random(0)
        remapper = cls(geometry)
        swaps_per_bank = int(geometry.rows_per_bank * fraction / 2)
        for bank_index in range(geometry.banks_total):
            for _ in range(swaps_per_bank):
                row_a = rng.randrange(geometry.rows_per_bank)
                if within_subarray:
                    subarray = geometry.subarray_of_row(row_a)
                    row_b = rng.choice(list(geometry.rows_in_subarray(subarray)))
                else:
                    row_b = rng.randrange(geometry.rows_per_bank)
                if row_a != row_b:
                    remapper.swap(bank_index, row_a, row_b)
        return remapper

    def swap(self, bank_index: int, row_a: int, row_b: int) -> None:
        """Swap the internal locations of two logical rows of one bank."""
        internal_a = self.to_internal(bank_index, row_a)
        internal_b = self.to_internal(bank_index, row_b)
        self._set(bank_index, row_a, internal_b)
        self._set(bank_index, row_b, internal_a)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def to_internal(self, bank_index: int, logical_row: int) -> int:
        return self._forward.get((bank_index, logical_row), logical_row)

    def to_logical(self, bank_index: int, internal_row: int) -> int:
        return self._backward.get((bank_index, internal_row), internal_row)

    def is_identity(self) -> bool:
        return not self._forward

    def remapped_rows(self, bank_index: int) -> Iterator[int]:
        """Logical rows of ``bank_index`` whose internal location differs."""
        for (bank, logical), internal in self._forward.items():
            if bank == bank_index and logical != internal:
                yield logical

    def breaks_subarray(self, bank_index: int) -> Iterator[int]:
        """Logical rows mapped into a *different* subarray internally —
        exactly the rows that endanger subarray isolation (§4.1)."""
        for logical in self.remapped_rows(bank_index):
            internal = self.to_internal(bank_index, logical)
            if not self.geometry.same_subarray(logical, internal):
                yield logical

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _set(self, bank_index: int, logical: int, internal: int) -> None:
        if logical == internal:
            self._forward.pop((bank_index, logical), None)
            self._backward.pop((bank_index, internal), None)
        else:
            self._forward[(bank_index, logical)] = internal
            self._backward[(bank_index, internal)] = logical
