"""DRAM technology-generation presets.

§3 of the paper summarizes Kim et al. (ISCA '20): as DRAM nodes densify,
the minimum hammer count to first flip (HC_first, our MAC) drops by orders
of magnitude and the blast radius grows.  These presets encode that trend
with the published HC_first medians so the density-scaling experiments
(E5) sweep realistic points:

==============  ========  ============
generation      MAC       blast radius
==============  ========  ============
DDR3 (old)      139,200   1
DDR3 (new)       22,400   1
DDR4 (old)       17,500   2
DDR4 (new)       10,000   2
LPDDR4            4,800   2
future (extrapolated)  1,000   4
==============  ========  ============

Each preset bundles geometry, timing, and disturbance parameters plus a
``scale`` knob that shrinks the refresh window and MAC together so
pure-Python runs finish quickly while preserving the attack-vs-refresh
race (DESIGN.md §3, "Scaling note").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimings


@dataclass(frozen=True)
class DramGenerationPreset:
    """One DRAM technology node: name + geometry + timing + susceptibility."""

    name: str
    geometry: DramGeometry = field(default_factory=DramGeometry)
    timings: DramTimings = field(default_factory=DramTimings)
    profile: DisturbanceProfile = field(default_factory=DisturbanceProfile)

    def scaled(self, factor: int) -> "DramGenerationPreset":
        """Shrink refresh window and MAC together by ``factor``.

        ACTs-needed-to-flip and window both divide by ``factor``, so the
        fraction of a window an attack needs — the quantity every
        experiment compares — is unchanged.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self
        return replace(
            self,
            name=f"{self.name}/scale{factor}",
            timings=self.timings.scaled(factor),
            profile=self.profile.scaled(factor),
        )


def _preset(name: str, mac: int, blast_radius: int) -> DramGenerationPreset:
    return DramGenerationPreset(
        name=name,
        profile=DisturbanceProfile(mac=mac, blast_radius=blast_radius),
    )


DDR3_OLD = _preset("ddr3-old", mac=139_200, blast_radius=1)
DDR3_NEW = _preset("ddr3-new", mac=22_400, blast_radius=1)
DDR4_OLD = _preset("ddr4-old", mac=17_500, blast_radius=2)
DDR4_NEW = _preset("ddr4-new", mac=10_000, blast_radius=2)
LPDDR4 = _preset("lpddr4", mac=4_800, blast_radius=2)
FUTURE = _preset("future", mac=1_000, blast_radius=4)

GENERATIONS: Tuple[DramGenerationPreset, ...] = (
    DDR3_OLD,
    DDR3_NEW,
    DDR4_OLD,
    DDR4_NEW,
    LPDDR4,
    FUTURE,
)

_BY_NAME: Dict[str, DramGenerationPreset] = {p.name: p for p in GENERATIONS}


def scale_for(preset: DramGenerationPreset, target_mac: int = 150,
              cap: int = 64) -> int:
    """The largest scale factor (≤ ``cap``) keeping the scaled MAC at or
    above ``target_mac``.

    Scaling shrinks MAC and window together, which preserves the
    window-level race exactly — but second-order effects (a defense's
    own refresh ACTs disturbing the refresh-radius *periphery*) grow
    quadratically as MAC falls, so dense-node presets must be scaled
    more gently.  Keeping scaled MAC ≥ ~150 keeps those artefacts below
    the flip threshold; see DESIGN.md §3.
    """
    if target_mac < 1 or cap < 1:
        raise ValueError("target_mac and cap must be >= 1")
    return max(1, min(cap, preset.profile.mac // target_mac))


def by_name(name: str) -> DramGenerationPreset:
    """Look up a generation preset by name (e.g. ``"ddr4-new"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown DRAM generation {name!r}; known: {known}") from None
