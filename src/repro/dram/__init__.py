"""Behavioral DRAM device model: geometry, timing, commands, Rowhammer
disturbance physics, internal row remapping, generation presets, the
optional data plane, and SEC-DED ECC."""

from repro.dram.bank import BankState
from repro.dram.data import DataPlane
from repro.dram.ecc import EccOutcome, classify_flips, decode, encode
from repro.dram.commands import (
    CommandKind,
    DramCommand,
    act,
    pre,
    rd,
    ref,
    ref_neighbors,
    wr,
)
from repro.dram.device import DramDevice, InDramMitigation
from repro.dram.disturbance import (
    BitFlip,
    DisturbanceProfile,
    DisturbanceTracker,
)
from repro.dram.geometry import DdrAddress, DramGeometry
from repro.dram.presets import (
    DDR3_NEW,
    DDR3_OLD,
    DDR4_NEW,
    DDR4_OLD,
    FUTURE,
    GENERATIONS,
    LPDDR4,
    DramGenerationPreset,
    by_name,
)
from repro.dram.remap import RowRemapper
from repro.dram.timing import DramTimings

__all__ = [
    "BankState",
    "DataPlane",
    "EccOutcome",
    "classify_flips",
    "decode",
    "encode",
    "BitFlip",
    "CommandKind",
    "DdrAddress",
    "DisturbanceProfile",
    "DisturbanceTracker",
    "DramCommand",
    "DramDevice",
    "DramGenerationPreset",
    "DramGeometry",
    "DramTimings",
    "InDramMitigation",
    "RowRemapper",
    "GENERATIONS",
    "DDR3_OLD",
    "DDR3_NEW",
    "DDR4_OLD",
    "DDR4_NEW",
    "LPDDR4",
    "FUTURE",
    "by_name",
    "act",
    "pre",
    "rd",
    "wr",
    "ref",
    "ref_neighbors",
]
