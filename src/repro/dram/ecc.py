"""SEC-DED ECC: the defense-in-depth layer the paper's related work
dismantles.

The paper cites Cojocar et al. [12] ("Exploiting correcting codes: on
the effectiveness of ECC memory against Rowhammer attacks"): server ECC
(single-error-correct, double-error-detect per code word) was long
assumed to neutralize Rowhammer; it does not — one flipped bit per word
is silently corrected, two crash the machine, and three or more can slip
through as *silent data corruption*.

This module implements a real (72,64) Hamming+parity SEC-DED code —
encode, decode, correct, classify — so experiment E15 can measure how
hammer-induced multi-bit flips distribute across those three outcomes,
instead of asserting the citation.

The code is the classic construction: check bits at power-of-two
positions of a 72-bit codeword cover parity groups; an overall parity
bit distinguishes single (correctable) from double (detectable-only)
errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

#: data bits per ECC word (one 64-bit word per code word, as in DDR ECC)
DATA_BITS = 64
#: Hamming check bits for 64 data bits
CHECK_BITS = 7
#: + 1 overall parity bit
CODEWORD_BITS = DATA_BITS + CHECK_BITS + 1  # 72


class EccOutcome(enum.Enum):
    """What the memory controller's ECC logic concluded about a word."""

    CLEAN = "clean"  # no error syndrome
    CORRECTED = "corrected"  # single-bit error, fixed transparently
    DETECTED = "detected"  # uncorrectable (machine-check / crash)
    SILENT = "silent"  # corrupted data with a clean or misleading syndrome


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


# Positions 1..71 in Hamming numbering; powers of two hold check bits,
# the rest hold data bits in order.  Position 0 holds overall parity.
_DATA_POSITIONS: List[int] = [
    position
    for position in range(1, CODEWORD_BITS)
    if not _is_power_of_two(position)
][:DATA_BITS]
_CHECK_POSITIONS: List[int] = [1 << i for i in range(CHECK_BITS)]

assert len(_DATA_POSITIONS) == DATA_BITS


def encode(data: int) -> int:
    """Encode a 64-bit integer into a 72-bit SEC-DED codeword."""
    if not 0 <= data < (1 << DATA_BITS):
        raise ValueError("data must be a 64-bit unsigned integer")
    word = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (data >> index) & 1:
            word |= 1 << position
    for check_position in _CHECK_POSITIONS:
        parity = 0
        for position in range(1, CODEWORD_BITS):
            if position & check_position and (word >> position) & 1:
                parity ^= 1
        if parity:
            word |= 1 << check_position
    # overall parity over positions 1..71, stored at position 0
    overall = 0
    for position in range(1, CODEWORD_BITS):
        overall ^= (word >> position) & 1
    if overall:
        word |= 1
    return word


def _extract_data(word: int) -> int:
    data = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (word >> position) & 1:
            data |= 1 << index
    return data


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: int
    outcome: EccOutcome


def decode(word: int) -> DecodeResult:
    """Decode a 72-bit codeword: correct single-bit errors, flag double-
    bit errors, and return whatever the hardware would return.

    Three or more flipped bits alias into one of the other syndromes —
    sometimes a "single-bit error" at the wrong position (miscorrection)
    or even a clean syndrome.  The caller compares against ground truth
    to classify those as SILENT (see :func:`classify_flips`).
    """
    if not 0 <= word < (1 << CODEWORD_BITS):
        raise ValueError("word must be a 72-bit unsigned integer")
    syndrome = 0
    for check_position in _CHECK_POSITIONS:
        parity = 0
        for position in range(1, CODEWORD_BITS):
            if position & check_position and (word >> position) & 1:
                parity ^= 1
        if parity:
            syndrome |= check_position
    overall = 0
    for position in range(0, CODEWORD_BITS):
        overall ^= (word >> position) & 1

    if syndrome == 0 and overall == 0:
        return DecodeResult(_extract_data(word), EccOutcome.CLEAN)
    if overall == 1:
        # odd number of flipped bits; syndrome names the (apparent) one
        if syndrome == 0:
            # the overall parity bit itself flipped
            return DecodeResult(_extract_data(word), EccOutcome.CORRECTED)
        if syndrome < CODEWORD_BITS:
            corrected = word ^ (1 << syndrome)
            return DecodeResult(_extract_data(corrected), EccOutcome.CORRECTED)
        return DecodeResult(_extract_data(word), EccOutcome.DETECTED)
    # even number of flips with a nonzero syndrome: uncorrectable
    return DecodeResult(_extract_data(word), EccOutcome.DETECTED)


def classify_flips(data: int, bit_indices: List[int]) -> EccOutcome:
    """Ground-truth classification: encode ``data``, flip the codeword
    bits at ``bit_indices``, decode, and compare.

    * decoded == original and hardware said CLEAN/CORRECTED → CORRECTED
      (or CLEAN when nothing flipped);
    * hardware said DETECTED → DETECTED (crash, a DoS outcome);
    * decoded != original while hardware said CLEAN/CORRECTED → SILENT.
    """
    word = encode(data)
    for bit in bit_indices:
        if not 0 <= bit < CODEWORD_BITS:
            raise ValueError(f"bit index {bit} out of codeword range")
        word ^= 1 << bit
    result = decode(word)
    if result.outcome is EccOutcome.DETECTED:
        return EccOutcome.DETECTED
    if result.data == data:
        return EccOutcome.CLEAN if not bit_indices else EccOutcome.CORRECTED
    return EccOutcome.SILENT


def classify_line_flips(
    bits_per_word: List[int], rng
) -> Tuple[EccOutcome, List[EccOutcome]]:
    """Classify a whole cache line given how many flipped bits landed in
    each of its ECC words; per-word bit positions are drawn from ``rng``.

    The line-level outcome is the worst word: SILENT > DETECTED >
    CORRECTED > CLEAN (silent corruption dominates because it defeats
    the protection entirely; detection "only" costs availability).
    """
    severity = {
        EccOutcome.CLEAN: 0,
        EccOutcome.CORRECTED: 1,
        EccOutcome.DETECTED: 2,
        EccOutcome.SILENT: 3,
    }
    outcomes = []
    for bits in bits_per_word:
        positions = rng.sample(range(CODEWORD_BITS), min(bits, CODEWORD_BITS))
        outcomes.append(classify_flips(0, sorted(positions)))
    line_outcome = max(outcomes, key=lambda o: severity[o], default=EccOutcome.CLEAN)
    return line_outcome, outcomes
