"""The DDR command vocabulary spoken between controller and module.

Matches §2.1 of the paper (ACT/PRE/RD/WR/REF) plus the paper's proposed
``REF_NEIGHBORS`` extension (§4.3): a refresh command that takes an
aggressor row address *and a blast radius* so the module can refresh all
potential victims itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dram.geometry import DdrAddress


class CommandKind(enum.Enum):
    """DDR command opcodes."""

    ACT = "ACT"  # activate: connect a row to its bank's row buffer
    PRE = "PRE"  # precharge: disconnect (close) the bank's open row
    RD = "RD"  # read a cache-line column from the open row
    WR = "WR"  # write a cache-line column of the open row
    REF = "REF"  # periodic refresh burst (no row argument, §4.3)
    REF_NEIGHBORS = "REF_NEIGHBORS"  # proposed: refresh victims of a row


@dataclass(frozen=True)
class DramCommand:
    """One command as issued on the command bus.

    ``address`` is required for ACT/RD/WR/REF_NEIGHBORS, identifies only
    the bank for PRE, and is ``None`` for REF (the module's internal
    refresh pointer chooses the rows — exactly the limitation §4.3 calls
    out: software cannot name a row through REF).

    ``blast_radius`` is meaningful only for REF_NEIGHBORS and carries the
    adaptability argument from §4.3: the command accepts ``b`` so defenses
    can widen the refreshed neighbourhood as DRAM density worsens.
    """

    kind: CommandKind
    address: Optional[DdrAddress] = None
    blast_radius: int = 0

    def __post_init__(self) -> None:
        needs_address = self.kind in (
            CommandKind.ACT,
            CommandKind.PRE,
            CommandKind.RD,
            CommandKind.WR,
            CommandKind.REF_NEIGHBORS,
        )
        if needs_address and self.address is None:
            raise ValueError(f"{self.kind.value} requires an address")
        if self.kind is CommandKind.REF and self.address is not None:
            raise ValueError(
                "REF takes no row address; use REF_NEIGHBORS (proposed) or "
                "the refresh instruction's PRE+ACT sequence to target a row"
            )
        if self.kind is CommandKind.REF_NEIGHBORS and self.blast_radius < 1:
            raise ValueError("REF_NEIGHBORS requires blast_radius >= 1")
        if self.kind is not CommandKind.REF_NEIGHBORS and self.blast_radius:
            raise ValueError("blast_radius only applies to REF_NEIGHBORS")


def act(address: DdrAddress) -> DramCommand:
    return DramCommand(CommandKind.ACT, address)


def pre(address: DdrAddress) -> DramCommand:
    return DramCommand(CommandKind.PRE, address)


def rd(address: DdrAddress) -> DramCommand:
    return DramCommand(CommandKind.RD, address)


def wr(address: DdrAddress) -> DramCommand:
    return DramCommand(CommandKind.WR, address)


def ref() -> DramCommand:
    return DramCommand(CommandKind.REF)


def ref_neighbors(address: DdrAddress, blast_radius: int) -> DramCommand:
    return DramCommand(CommandKind.REF_NEIGHBORS, address, blast_radius)
