"""Per-bank dynamic state: the row buffer and timing availability.

A bank processes one command at a time (§4.1 — the reason interleaving
exists) and owns one row buffer shared by all of its subarrays (§2.1).
The memory controller consults ``busy_until`` for scheduling, which is how
bank-level parallelism emerges: requests to different banks overlap, while
requests to one bank serialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dram.timing import DramTimings


@dataclass
class BankState:
    """Mutable state of one DRAM bank."""

    timings: DramTimings
    open_row: Optional[int] = None
    busy_until: int = 0  # ns at which the bank can accept the next command
    last_act_at: int = -(10**18)  # enforce tRC between ACTs

    # statistics
    acts: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0  # bank was precharged
    row_conflicts: int = 0  # another row occupied the buffer

    def classify_access(self, row: int) -> str:
        """How a RD/WR to ``row`` would find the row buffer."""
        if self.open_row == row:
            return "hit"
        if self.open_row is None:
            return "miss"
        return "conflict"

    def access(self, row: int, now: int) -> int:
        """Perform the command sequence for one RD/WR to ``row``.

        Issues the implied PRE/ACT as needed, updates buffer state and
        statistics, and returns the time at which the requested data is
        available.  The bank frees up one burst slot (tBL) after the
        column command, so row-buffer hits to the same bank *pipeline* at
        burst rate while the data latency stays tCL — matching real DDR,
        where consecutive CAS commands overlap.  ACTs remain serialized by
        tRC, which is the physical rate limit hammering runs into.
        """
        timings = self.timings
        busy = self.busy_until
        start = now if now >= busy else busy
        open_row = self.open_row
        if open_row == row:  # hit
            self.row_hits += 1
            self.busy_until = start + timings.tBL
            return start + timings.tCL
        if open_row is None:  # miss
            self.row_misses += 1
            act_at = start
        else:  # conflict
            self.row_conflicts += 1
            self.precharges += 1
            act_at = start + timings.tRP
        earliest = self.last_act_at + timings.tRC
        if act_at < earliest:
            act_at = earliest
        self.open_row = row
        self.acts += 1
        self.last_act_at = act_at
        tRCD = timings.tRCD
        self.busy_until = act_at + tRCD + timings.tBL
        return act_at + tRCD + timings.tCL

    def activate(self, row: int, now: int) -> int:
        """Explicit ACT (used by targeted refresh); returns completion time."""
        start = max(now, self.busy_until)
        if self.open_row is not None:
            self.precharges += 1
            start += self.timings.tRP
        start = self._respect_trc(start)
        self._activate(row, start)
        ready = start + self.timings.tRCD
        self.busy_until = ready
        return ready

    def precharge(self, now: int) -> int:
        """Explicit PRE; closes the open row.  Returns completion time."""
        start = max(now, self.busy_until)
        if self.open_row is not None:
            self.precharges += 1
            self.open_row = None
            start += self.timings.tRP
        self.busy_until = start
        return start

    def block_for_refresh(self, now: int) -> int:
        """The bank participates in a REF burst: unavailable for tRFC and
        left precharged.  Returns when the bank frees up."""
        start = max(now, self.busy_until)
        if self.open_row is not None:
            self.precharges += 1
            self.open_row = None
        self.busy_until = start + self.timings.tRFC
        return self.busy_until

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _respect_trc(self, start: int) -> int:
        """Delay ``start`` until tRC has elapsed since the previous ACT —
        the physical rate limit on hammering one bank."""
        earliest = self.last_act_at + self.timings.tRC
        return max(start, earliest)

    def _activate(self, row: int, at: int) -> None:
        self.open_row = row
        self.acts += 1
        self.last_act_at = at

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_conflicts

    @property
    def row_hit_rate(self) -> float:
        total = self.accesses
        return self.row_hits / total if total else 0.0
