"""An optional data plane: actual bytes behind the address space.

The disturbance oracle records *that* a row flipped; the data plane
records *what* that did to stored bytes, so tenants can literally write
patterns, get hammered, and read corruption back — the observable a real
Rowhammer victim (or templating tool) works from.

Storage is sparse (only written lines exist).  Corruption is applied at
flip time by the system's flip router: for a flip in row R, one written
line of R (if any) gets ``flipped_bits`` random bits XORed, using the
flip event's own seeded randomness so runs stay reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple


class DataPlane:
    """Sparse byte storage keyed by physical cache-line index."""

    def __init__(self, cacheline_bytes: int = 64, seed: int = 0xDA7A) -> None:
        if cacheline_bytes < 1:
            raise ValueError("cacheline_bytes must be >= 1")
        self.cacheline_bytes = cacheline_bytes
        self._lines: Dict[int, bytearray] = {}
        self._rng = random.Random(seed)
        self.corrupted_lines: List[int] = []

    # ------------------------------------------------------------------
    # Program-visible access
    # ------------------------------------------------------------------

    def write(self, physical_line: int, data: bytes) -> None:
        """Store one line; short writes are zero-padded."""
        if physical_line < 0:
            raise ValueError("physical_line must be >= 0")
        if len(data) > self.cacheline_bytes:
            raise ValueError(
                f"data ({len(data)} bytes) exceeds the line size "
                f"({self.cacheline_bytes})"
            )
        buffer = bytearray(self.cacheline_bytes)
        buffer[: len(data)] = data
        self._lines[physical_line] = buffer

    def read(self, physical_line: int) -> bytes:
        """Read one line; unwritten lines read as zeros."""
        if physical_line < 0:
            raise ValueError("physical_line must be >= 0")
        stored = self._lines.get(physical_line)
        if stored is None:
            return bytes(self.cacheline_bytes)
        return bytes(stored)

    def written_lines(self) -> Iterable[int]:
        return self._lines.keys()

    # ------------------------------------------------------------------
    # Fault injection (driven by the flip router)
    # ------------------------------------------------------------------

    def corrupt_one_of(
        self, candidate_lines: Iterable[int], bits: int
    ) -> Optional[Tuple[int, List[int]]]:
        """Flip ``bits`` random bits in one *written* line among the
        candidates (a flip only damages data that exists).  Returns
        ``(line, bit_indices)`` or ``None`` if nothing was written there.
        """
        written = sorted(
            line for line in candidate_lines if line in self._lines
        )
        if not written:
            return None
        line = written[self._rng.randrange(len(written))]
        buffer = self._lines[line]
        flipped: List[int] = []
        for _ in range(max(1, bits)):
            bit_index = self._rng.randrange(self.cacheline_bytes * 8)
            buffer[bit_index // 8] ^= 1 << (bit_index % 8)
            flipped.append(bit_index)
        self.corrupted_lines.append(line)
        return line, flipped

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------

    def verify(self, physical_line: int, expected: bytes) -> bool:
        """Does the stored line still match ``expected`` (zero-padded)?"""
        buffer = bytearray(self.cacheline_bytes)
        buffer[: len(expected)] = expected
        return self.read(physical_line) == bytes(buffer)

    def corrupted_count(self) -> int:
        return len(self.corrupted_lines)
