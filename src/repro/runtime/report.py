"""End-of-campaign run report: one deterministic artifact per campaign.

``python -m repro report --campaign <journal>`` (and the library entry
point :func:`write_run_report`) folds everything a finished — or still
running — campaign left on disk into a machine-readable JSON report and
a human-readable markdown rendering:

* the journal: seeds, completion state, per-seed results merged into
  aggregates (bit-identical to the in-memory fold, because journal
  records round-trip through JSON exactly);
* worker metrics: per-seed registry snapshots merged campaign-wide
  (ints sum, floats average — see
  :func:`~repro.runtime.telemetry.merge_metric_snapshots`);
* the telemetry sidecar: lifecycle counts (started/finished/retried/
  failed/cached), wall-clock span, and the final ``runtime.*`` snapshot
  the ``campaign_finished`` record carried.

The report is a pure function of the files, so rerunning it over the
same journal yields byte-identical JSON — CI can diff it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.stats import merge_replications
from repro.obs.events import (
    CAMPAIGN_FINISHED,
    SEED_CACHED,
    SEED_FAILED,
    SEED_FINISHED,
    SEED_RETRIED,
    SEED_STARTED,
    TraceEvent,
)
from repro.runtime.journal import JournalSnapshot, load_journal
from repro.runtime.telemetry import (
    merge_metric_snapshots,
    read_telemetry,
    telemetry_path,
)

#: bump when the report layout changes
REPORT_SCHEMA = 1


def summarize_telemetry(events: List[TraceEvent]) -> Dict[str, object]:
    """Lifecycle digest of one telemetry stream (deterministic)."""
    counts: Dict[str, int] = {}
    retried_seeds: List[int] = []
    failed_seeds: List[int] = []
    runtime: Dict[str, object] = {}
    last_eta: Optional[float] = None
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.kind == SEED_RETRIED:
            retried_seeds.append(int(event.data["seed"]))
        elif event.kind == SEED_FAILED:
            failed_seeds.append(int(event.data["seed"]))
        elif event.kind == SEED_FINISHED:
            eta = event.data.get("eta_s")
            if eta is not None:
                last_eta = float(eta)
        elif event.kind == CAMPAIGN_FINISHED:
            runtime = dict(event.data.get("runtime") or {})
    span_ns = (
        events[-1].time_ns - events[0].time_ns if len(events) > 1 else 0
    )
    return {
        "events": len(events),
        "counts_by_kind": {k: counts[k] for k in sorted(counts)},
        "seeds_started": counts.get(SEED_STARTED, 0),
        "seeds_finished": counts.get(SEED_FINISHED, 0),
        "seeds_cached": counts.get(SEED_CACHED, 0),
        "retried_seeds": sorted(set(retried_seeds)),
        "failed_seeds": sorted(set(failed_seeds)),
        "last_eta_s": last_eta,
        "wall_span_ns": span_ns,
        "runtime": {k: runtime[k] for k in sorted(runtime)},
    }


def build_run_report(
    journal: Union[str, Path, JournalSnapshot],
    telemetry: Optional[List[TraceEvent]] = None,
) -> Dict[str, object]:
    """Assemble the campaign report from on-disk state.

    ``journal`` may be a path (the telemetry sidecar is discovered next
    to it) or an already-loaded :class:`JournalSnapshot` (pass
    ``telemetry`` explicitly then).
    """
    if not isinstance(journal, JournalSnapshot):
        path = Path(journal)
        snapshot = load_journal(path)
        if telemetry is None:
            telemetry = read_telemetry(telemetry_path(path))
    else:
        snapshot = journal
        telemetry = telemetry or []
    header = snapshot.header
    seeds = header.seeds
    done = [s for s in seeds if s in snapshot.completed]
    runs = [snapshot.completed[s] for s in done]
    aggregates: Dict[str, object] = {}
    if runs:
        aggregates = {
            name: {
                "mean": agg.mean,
                "stdev": agg.stdev,
                "min": agg.minimum,
                "max": agg.maximum,
                "samples": agg.samples,
            }
            for name, agg in sorted(merge_replications(runs).items())
        }
    worker_snapshots = [
        snapshot.worker_metrics[s]
        for s in seeds
        if s in snapshot.worker_metrics
    ]
    merged = (
        merge_metric_snapshots(worker_snapshots) if worker_snapshots else {}
    )
    return {
        "schema": REPORT_SCHEMA,
        "campaign": {
            "experiment": header.experiment,
            "fingerprint": header.fingerprint,
            "seeds": list(seeds),
            "completed": len(done),
            "pending": snapshot.pending(),
            "metrics_seeds": len(worker_snapshots),
        },
        "metrics": {k: merged[k] for k in sorted(merged)},
        "aggregates": aggregates,
        "telemetry": summarize_telemetry(telemetry),
    }


def render_run_report(report: Dict[str, object]) -> str:
    """Markdown rendering of :func:`build_run_report`'s output."""
    campaign = report["campaign"]
    telemetry = report["telemetry"]
    metrics = report["metrics"]
    aggregates = report["aggregates"]
    lines: List[str] = []
    title = campaign["experiment"] or "campaign"
    lines.append(f"# Campaign report: {title}")
    lines.append("")
    lines.append(f"- fingerprint: `{campaign['fingerprint']}`")
    lines.append(
        f"- seeds: {campaign['completed']}/{len(campaign['seeds'])} "
        f"complete"
        + (
            f" (pending: {', '.join(str(s) for s in campaign['pending'])})"
            if campaign["pending"] else ""
        )
    )
    lines.append(
        f"- lifecycle: {telemetry['seeds_started']} started, "
        f"{telemetry['seeds_finished']} finished, "
        f"{telemetry['seeds_cached']} cached, "
        f"{len(telemetry['retried_seeds'])} retried, "
        f"{len(telemetry['failed_seeds'])} failed"
    )
    if telemetry["wall_span_ns"]:
        lines.append(
            f"- wall clock: {telemetry['wall_span_ns'] / 1e9:.3f} s"
        )
    if telemetry["runtime"]:
        lines.append("")
        lines.append("## Runtime")
        lines.append("")
        lines.append("| counter | value |")
        lines.append("| --- | ---: |")
        for key, value in telemetry["runtime"].items():
            lines.append(f"| {key} | {value} |")
    if metrics:
        lines.append("")
        lines.append("## Merged worker metrics")
        lines.append("")
        lines.append(
            f"({campaign['metrics_seeds']} seed snapshot"
            f"{'s' if campaign['metrics_seeds'] != 1 else ''}; "
            f"integer counters summed, float gauges averaged)"
        )
        lines.append("")
        lines.append("| metric | value |")
        lines.append("| --- | ---: |")
        for key, value in metrics.items():
            shown = f"{value:.4g}" if isinstance(value, float) else value
            lines.append(f"| {key} | {shown} |")
    if aggregates:
        lines.append("")
        lines.append("## Result aggregates")
        lines.append("")
        lines.append("| observable | mean | stdev | min | max | n |")
        lines.append("| --- | ---: | ---: | ---: | ---: | ---: |")
        for name, agg in aggregates.items():
            lines.append(
                f"| {name} | {agg['mean']:.4g} | {agg['stdev']:.4g} "
                f"| {agg['min']:.4g} | {agg['max']:.4g} "
                f"| {agg['samples']} |"
            )
    lines.append("")
    return "\n".join(lines)


def write_run_report(
    journal_path: Union[str, Path],
    output_base: Optional[Union[str, Path]] = None,
) -> Tuple[Path, Path]:
    """Write ``<base>.json`` and ``<base>.md`` for one journal; returns
    both paths.  Default base: the journal path plus ``-report``."""
    journal_path = Path(journal_path)
    base = (
        Path(output_base)
        if output_base is not None
        else journal_path.with_name(journal_path.name + "-report")
    )
    report = build_run_report(journal_path)
    json_path = base.with_suffix(base.suffix + ".json")
    md_path = base.with_suffix(base.suffix + ".md")
    base.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(
        json.dumps(report, sort_keys=True, indent=2) + "\n"
    )
    md_path.write_text(render_run_report(report))
    return json_path, md_path
