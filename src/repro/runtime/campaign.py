"""Campaigns: journaled, supervised, resumable replication runs.

A *campaign* is one scenario spec replicated across a seed list.  This
module ties the :class:`~repro.runtime.journal.CampaignJournal` (what is
already done) to the :class:`~repro.runtime.supervisor.Supervisor` (how
the rest gets done):

* a fresh campaign journals every per-seed result the moment a worker
  delivers it;
* ``resume=True`` reloads the journal, verifies its fingerprint against
  the requested spec + seeds, skips completed seeds, and merges old and
  new results **in seed order** — so the aggregates are bit-identical
  to an uninterrupted run;
* ``KeyboardInterrupt`` salvages instead of discarding: the exception
  is re-raised as :class:`CampaignInterrupted` carrying the partial
  result, and the journal (all flushed, fsync'd lines) is the resume
  point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.analysis.stats import (
    Aggregate,
    Number,
    ScenarioFn,
    merge_replications,
)
from repro.obs.events import (
    CACHE_HIT,
    CAMPAIGN_FINISHED,
    CAMPAIGN_RESUME,
    CAMPAIGN_STARTED,
    SEED_CACHED,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceBus
from repro.runtime.journal import (
    CampaignHeader,
    CampaignJournal,
    JournalError,
    campaign_fingerprint,
)
from repro.runtime.supervisor import (
    SeedFailure,
    SupervisedOutcome,
    Supervisor,
    SupervisorPolicy,
)
from repro.runtime.telemetry import (
    CampaignTelemetry,
    merge_metric_snapshots,
    telemetry_path,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.cache import ResultCache


@dataclass
class CampaignResult:
    """Outcome of one (possibly resumed) campaign."""

    seeds: List[int]
    completed: Dict[int, Mapping[str, Number]]
    failures: Dict[int, SeedFailure] = field(default_factory=dict)
    #: per-seed worker registry snapshots (``capture_metrics`` runs;
    #: cached seeds have none — their workers never ran)
    worker_metrics: Dict[int, Dict[str, Number]] = field(default_factory=dict)
    #: campaign-level metrics: worker snapshots merged in seed order
    #: (ints sum, floats average) plus the supervisor's ``runtime.*``
    metrics: Dict[str, Number] = field(default_factory=dict)
    #: seeds skipped because the journal already had their results
    resumed: int = 0
    #: seeds served from the content-addressed result cache
    cache_hits: int = 0
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    degraded: bool = False
    #: a graceful drain (SIGTERM) stopped the campaign early; the
    #: journal holds everything that finished, resume runs the rest
    drained: bool = False
    journal_path: Optional[Path] = None

    @property
    def complete(self) -> bool:
        return all(seed in self.completed for seed in self.seeds)

    @property
    def incomplete_seeds(self) -> List[int]:
        return [s for s in self.seeds if s not in self.completed]

    @property
    def aggregates(self) -> Optional[Dict[str, Aggregate]]:
        """Merged aggregates over the completed seeds, in seed order.

        For a complete campaign this is bit-identical to the serial
        ``replicate(spec, seeds)`` fold; for a partial one it covers
        what finished (and is labelled as such by the CLI).
        """
        runs = [self.completed[s] for s in self.seeds if s in self.completed]
        if not runs:
            return None
        return merge_replications(runs)

    def raise_if_incomplete(self) -> None:
        if not self.complete:
            raise CampaignIncomplete(self)


class CampaignIncomplete(RuntimeError):
    """Some seeds permanently failed after exhausting their retries."""

    def __init__(self, result: CampaignResult) -> None:
        self.result = result
        reasons = "; ".join(
            f"seed {f.seed}: {f.reason} ({f.attempts} attempts)"
            for f in result.failures.values()
        ) or f"seeds {result.incomplete_seeds} never completed"
        super().__init__(f"campaign incomplete: {reasons}")


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C (or SIGINT) landed mid-campaign; partial results salvaged.

    Subclasses :class:`KeyboardInterrupt` so callers that only handle
    the stock interrupt still unwind correctly.
    """

    def __init__(
        self, partial: CampaignResult, journal_path: Optional[Path]
    ) -> None:
        self.partial = partial
        self.journal_path = journal_path
        super().__init__("campaign interrupted")


def run_campaign(
    spec: ScenarioFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    experiment: str = "",
    trace: Optional[TraceBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    cache: Optional["ResultCache"] = None,
    capture_metrics: bool = True,
    drain_on_sigterm: bool = False,
) -> CampaignResult:
    """Run (or resume) one campaign under supervision.

    ``drain_on_sigterm=True`` installs a SIGTERM handler for the
    duration of the run that asks the supervisor to **drain**: every
    in-flight seed finishes and is journaled, queued seeds are left for
    a later ``--resume``, and the function returns normally with
    ``result.drained`` set.  This is how the campaign service stops its
    workers without losing (or duplicating) a single seed.  The
    previous handler is restored on exit; outside the main thread the
    flag is ignored (signals cannot be installed there).

    ``resume=True`` requires ``journal_path``; the journal's fingerprint
    must match ``(spec, seeds, experiment)`` or :class:`JournalError` is
    raised rather than silently mixing campaigns.

    With a ``cache``, seeds the cache already holds are journaled and
    counted as ``runtime.cache_hit`` (with a ``cache_hit`` trace event
    each) before the supervisor schedules anything; only misses reach
    the worker pool, and their fresh results are stored on delivery.
    Cached seeds bypass the supervisor entirely, so they can neither
    time out nor retry — a fully warm campaign forks no workers.

    A journaled campaign additionally streams lifecycle telemetry to
    the ``<journal>.telemetry`` sidecar (``python -m repro status``
    reads it live), and ``capture_metrics=True`` ships each worker's
    registry snapshot back with its result: snapshots ride on the
    journal records and merge into ``CampaignResult.metrics``.  Cached
    and previously-journaled-without-metrics seeds contribute no
    snapshot (their workers never ran under capture).
    """
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        raise ValueError("need at least one seed")
    fingerprint = campaign_fingerprint(spec, seeds, experiment)

    journal: Optional[CampaignJournal] = None
    telemetry: Optional[CampaignTelemetry] = None
    completed: Dict[int, Mapping[str, Number]] = {}
    worker_metrics: Dict[int, Dict[str, Number]] = {}
    resumed = 0
    if journal_path is not None:
        journal_path = Path(journal_path)
        if resume:
            journal = CampaignJournal.resume(journal_path)
            journal.verify(fingerprint)
            completed = dict(journal.completed)
            worker_metrics = dict(journal.worker_metrics)
            resumed = len(completed)
        else:
            journal = CampaignJournal.create(
                journal_path, spec, seeds, experiment
            )
        telemetry = CampaignTelemetry(
            telemetry_path(journal_path), append=resume
        )
    elif resume:
        raise JournalError("resume requested without a journal path")

    supervisor = Supervisor(
        policy=policy, trace=trace, metrics=metrics,
        fingerprint=fingerprint, telemetry=telemetry,
    )
    if resumed:
        supervisor._count("seeds_resumed", resumed)
        supervisor._emit(
            CAMPAIGN_RESUME,
            fingerprint=fingerprint,
            completed=resumed,
            remaining=len(seeds) - resumed,
        )
    supervisor._telemetry(
        CAMPAIGN_STARTED,
        fingerprint=fingerprint,
        experiment=experiment,
        seeds=len(seeds),
        resumed=resumed,
    )

    cache_hits = 0
    use_cache = False
    if cache is not None:
        from repro.analysis.cache import is_cacheable

        use_cache = is_cacheable(spec)
    if use_cache:
        assert cache is not None
        for seed in seeds:
            if seed in completed:
                continue
            hit = cache.get(spec, seed)
            if hit is None:
                supervisor._count("cache_miss")
                continue
            completed[seed] = hit
            if journal is not None:
                journal.record(seed, hit)
            cache_hits += 1
            supervisor._count("cache_hit")
            supervisor._emit(
                CACHE_HIT, fingerprint=fingerprint, seed=seed
            )
            supervisor._telemetry(SEED_CACHED, seed=seed)

    def on_result(
        seed: int,
        result: Mapping[str, Number],
        snapshot: Optional[Mapping[str, Number]] = None,
    ) -> None:
        completed[seed] = result
        if snapshot is not None:
            worker_metrics[seed] = dict(snapshot)
        if journal is not None:
            journal.record(seed, result, metrics=snapshot)
        if use_cache:
            assert cache is not None
            cache.put(spec, seed, result)

    def finish(outcome: SupervisedOutcome) -> CampaignResult:
        result = _build_result(
            seeds, completed, worker_metrics, outcome, supervisor,
            resumed, cache_hits,
            journal_path if journal is not None else None,
        )
        supervisor._telemetry(
            CAMPAIGN_FINISHED,
            fingerprint=fingerprint,
            completed=len(result.completed),
            failed=len(result.failures),
            retries=result.retries,
            respawns=result.respawns,
            timeouts=result.timeouts,
            cache_hits=result.cache_hits,
            degraded=result.degraded,
            drained=result.drained,
            runtime=supervisor.metrics.snapshot(),
        )
        if journal is not None:
            journal.close()
        if telemetry is not None:
            telemetry.close()
        return result

    remaining = [s for s in seeds if s not in completed]
    outcome = SupervisedOutcome()
    previous_sigterm = None
    if drain_on_sigterm:
        import signal

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            supervisor.request_drain()

        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # not the main thread; drain unavailable
            previous_sigterm = None
    try:
        if remaining:
            outcome = supervisor.map(
                spec, remaining, jobs=jobs, on_result=on_result,
                capture_metrics=capture_metrics,
            )
    except KeyboardInterrupt:
        partial = _build_result(
            seeds, completed, worker_metrics, outcome, supervisor,
            resumed, cache_hits,
            journal_path if journal is not None else None,
        )
        if journal is not None:
            journal.close()
        if telemetry is not None:
            telemetry.close()
        raise CampaignInterrupted(
            partial, journal_path if journal is not None else None
        ) from None
    finally:
        if drain_on_sigterm and previous_sigterm is not None:
            import signal

            signal.signal(signal.SIGTERM, previous_sigterm)
    return finish(outcome)


def _build_result(
    seeds: List[int],
    completed: Dict[int, Mapping[str, Number]],
    worker_metrics: Dict[int, Dict[str, Number]],
    outcome: SupervisedOutcome,
    supervisor: Supervisor,
    resumed: int,
    cache_hits: int,
    journal_path: Optional[Path],
) -> CampaignResult:
    snapshots = [worker_metrics[s] for s in seeds if s in worker_metrics]
    merged = merge_metric_snapshots(snapshots) if snapshots else {}
    for key, value in supervisor.metrics.snapshot().items():
        merged.setdefault(key, value)
    return CampaignResult(
        seeds=list(seeds),
        completed=dict(completed),
        failures=dict(outcome.failures),
        worker_metrics=dict(worker_metrics),
        metrics=merged,
        resumed=resumed,
        cache_hits=cache_hits,
        retries=outcome.retries,
        respawns=outcome.respawns,
        timeouts=outcome.timeouts,
        degraded=outcome.degraded,
        drained=outcome.drained,
        journal_path=journal_path,
    )


def _rebuildable_specs() -> Dict[str, type]:
    """Spec types a journal/queue signature can reconstruct by name."""
    from repro.analysis.parallel import (
        AttackReplicationSpec,
        BenignReplicationSpec,
        EvasionReplicationSpec,
    )
    from repro.faults.crash import CrashingSpec

    return {
        klass.__name__: klass
        for klass in (
            AttackReplicationSpec,
            BenignReplicationSpec,
            EvasionReplicationSpec,
            CrashingSpec,
        )
    }


def rebuild_from_signature(signature: Mapping[str, object]) -> ScenarioFn:
    """Reconstruct a scenario spec from its ``spec_signature`` dict.

    Handles the flat, picklable replication specs the CLI exposes plus
    wrapper specs whose fields are themselves signatures (the chaos
    harness's :class:`~repro.faults.crash.CrashingSpec`), recursively.
    A signature carrying only a ``repr`` (arbitrary callables) cannot
    be rebuilt.
    """
    known = _rebuildable_specs()
    klass = known.get(str(signature.get("type")))
    if klass is None or "params" not in signature:
        raise JournalError(
            f"cannot rebuild spec of type {signature.get('type')!r}; "
            f"resume it through repro.runtime.run_campaign with the "
            f"original spec object"
        )
    params = dict(signature["params"])  # type: ignore[arg-type]
    for key, value in params.items():
        if (
            isinstance(value, dict)
            and str(value.get("type")) in known
            and "params" in value
        ):
            params[key] = rebuild_from_signature(value)
        elif isinstance(value, list):
            params[key] = tuple(value)
    try:
        return klass(**params)  # type: ignore[arg-type]
    except TypeError as error:
        raise JournalError(
            f"journal spec params do not match "
            f"{klass.__name__}: {error}"
        ) from None


def rebuild_spec(header: CampaignHeader) -> ScenarioFn:
    """Reconstruct the scenario spec a journal header describes.

    Only specs :func:`rebuild_from_signature` knows can be rebuilt; a
    journal written for an arbitrary callable carries a ``repr``
    fingerprint but not enough to reconstruct it.
    """
    return rebuild_from_signature(header.spec)
