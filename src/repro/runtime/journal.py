"""Crash-safe per-seed result journal for replication campaigns.

A campaign journal is a JSONL file: one schema-versioned header line
followed by one record line per completed seed.  The header carries a
**campaign fingerprint** — a digest of the scenario spec, the seed list
and the journal schema — so a resume can refuse to graft results from a
different campaign onto this one.

Durability contract:

* every line is written in a single ``write`` call on a line-buffered
  stream and then ``flush`` + ``fsync``\\ ed, so a SIGKILL between seeds
  loses nothing and a SIGKILL mid-write leaves at most one torn final
  line;
* the loader drops a torn final line (that seed simply reruns on
  resume) but treats corruption anywhere else as an error;
* duplicate records for a seed are legal — a crash after write but
  before the supervisor noted completion makes the seed rerun — and the
  *last* record wins, which is deterministic because per-seed results
  are pure functions of the seed.

Because results round-trip through JSON (ints stay ints, floats
round-trip exactly via ``repr``), aggregates merged from journal records
are bit-identical to aggregates merged from the in-memory results of an
uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.stats import Number

#: bump when the journal layout changes; resumes across versions refuse
SCHEMA_VERSION = 1

#: value of the header's ``kind`` field
JOURNAL_KIND = "repro-campaign-journal"

#: chaos-only hook: when set to an integer N, the N+1th journal append
#: in this process raises ``ENOSPC`` (see :mod:`repro.faults.service`).
#: Never set outside chaos drills; the env lookup is one dict probe per
#: append, dwarfed by the fsync beside it.
CHAOS_ENOSPC_ENV = "REPRO_CHAOS_JOURNAL_ENOSPC_AFTER"

#: process-wide append count, consulted only while the chaos env is set
_chaos_appends = 0


def _chaos_disk_full_check() -> None:
    budget = os.environ.get(CHAOS_ENOSPC_ENV)
    if budget is None:
        return
    global _chaos_appends
    _chaos_appends += 1
    if _chaos_appends > int(budget):
        raise OSError(
            errno.ENOSPC,
            f"injected disk-full: journal append "
            f"{_chaos_appends} > budget {budget} ({CHAOS_ENOSPC_ENV})",
        )


class JournalError(ValueError):
    """A journal is missing, malformed, or belongs to another campaign."""


def _signature_value(value: object) -> object:
    """JSON-able form of one spec field, recursing into nested specs.

    Nested dataclasses (e.g. the spec a
    :class:`~repro.faults.crash.CrashingSpec` wraps) keep their type
    name so :func:`repro.runtime.campaign.rebuild_spec` can reconstruct
    them; tuples flatten to lists, which is what JSON would do anyway.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return spec_signature(value)
    if isinstance(value, (list, tuple)):
        return [_signature_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _signature_value(val) for key, val in value.items()}
    return value


def spec_signature(spec: object) -> Dict[str, object]:
    """A JSON-able, order-stable description of a scenario spec.

    Dataclass specs (the picklable ones in
    :mod:`repro.analysis.parallel`) serialize as type name + field dict,
    which is enough to rebuild them on resume; nested dataclass fields
    (wrapper specs) recurse with their own type names.  Anything else
    falls back to ``repr`` — fingerprintable but not rebuildable.
    """
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        return {
            "type": type(spec).__name__,
            "params": {
                field.name: _signature_value(getattr(spec, field.name))
                for field in dataclasses.fields(spec)
            },
        }
    return {"type": type(spec).__name__, "repr": repr(spec)}


def campaign_fingerprint(
    spec: object, seeds: Sequence[int], experiment: str = ""
) -> str:
    """Digest identifying one campaign: spec + seeds + schema version.

    Any change to the scenario parameters, the seed list (including
    order), or the journal schema produces a different fingerprint, so a
    stale journal can never be silently merged into a different
    campaign.
    """
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "experiment": experiment,
            "spec": spec_signature(spec),
            "seeds": list(seeds),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignHeader:
    """The journal's first line, parsed."""

    schema: int
    fingerprint: str
    experiment: str
    spec: Dict[str, object]
    seeds: List[int]

    def as_json_dict(self) -> Dict[str, object]:
        return {
            "kind": JOURNAL_KIND,
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "experiment": self.experiment,
            "spec": self.spec,
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "CampaignHeader":
        if payload.get("kind") != JOURNAL_KIND:
            raise JournalError(
                f"not a campaign journal (kind={payload.get('kind')!r})"
            )
        schema = int(payload["schema"])  # type: ignore[arg-type]
        if schema != SCHEMA_VERSION:
            raise JournalError(
                f"journal schema {schema} != supported {SCHEMA_VERSION}"
            )
        return cls(
            schema=schema,
            fingerprint=str(payload["fingerprint"]),
            experiment=str(payload.get("experiment", "")),
            spec=dict(payload["spec"]),  # type: ignore[arg-type]
            seeds=[int(seed) for seed in payload["seeds"]],  # type: ignore
        )


def _read_lines(path: Path) -> Tuple[List[Dict[str, object]], int]:
    """Parse every journal line, tolerating a torn final line only.

    Returns the parsed payloads plus the byte offset where the clean
    prefix ends; a resume truncates the file there so a fresh append
    can never concatenate onto a torn fragment.
    """
    payloads: List[Dict[str, object]] = []
    torn: Optional[str] = None
    clean_end = 0
    offset = 0
    with path.open("rb") as stream:
        raw = stream.read()
    for line_number, raw_line in enumerate(
        raw.splitlines(keepends=True), start=1
    ):
        offset += len(raw_line)
        line = raw_line.strip()
        if not line:
            if torn is None:
                clean_end = offset
            continue
        if torn is not None:
            raise JournalError(torn)
        try:
            payloads.append(json.loads(line))
            clean_end = offset
        except json.JSONDecodeError as error:
            torn = f"{path}:{line_number}: corrupt journal line: {error}"
    return payloads, clean_end


@dataclass(frozen=True)
class JournalSnapshot:
    """A read-only view of one journal: header + everything recorded.

    Unlike :meth:`CampaignJournal.resume`, loading a snapshot never
    mutates the file (no torn-line truncation, no append handle), so
    ``python -m repro status`` can safely inspect the journal of a
    campaign that is still running in another process.
    """

    header: CampaignHeader
    completed: Dict[int, Dict[str, Number]]
    worker_metrics: Dict[int, Dict[str, Number]]

    def pending(self) -> List[int]:
        return [
            s for s in self.header.seeds if s not in self.completed
        ]


def load_journal(path: Union[str, Path]) -> JournalSnapshot:
    """Read a journal without touching it (see :class:`JournalSnapshot`)."""
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    payloads, _ = _read_lines(path)
    if not payloads:
        raise JournalError(f"{path}: empty journal")
    header = CampaignHeader.from_json_dict(payloads[0])
    known = set(header.seeds)
    completed: Dict[int, Dict[str, Number]] = {}
    worker_metrics: Dict[int, Dict[str, Number]] = {}
    for payload in payloads[1:]:
        try:
            seed = int(payload["seed"])  # type: ignore[arg-type]
            result = dict(payload["result"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise JournalError(
                f"{path}: malformed record {payload!r}: {error}"
            ) from None
        if seed not in known:
            raise JournalError(
                f"{path}: record for seed {seed} not in campaign seeds"
            )
        completed[seed] = result
        metrics = payload.get("metrics")
        if metrics is not None:
            worker_metrics[seed] = dict(metrics)  # type: ignore[arg-type]
    return JournalSnapshot(
        header=header, completed=completed, worker_metrics=worker_metrics
    )


def peek_header(path: Union[str, Path]) -> CampaignHeader:
    """Read just the header of an existing journal."""
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    with path.open() as stream:
        first = stream.readline().strip()
    if not first:
        raise JournalError(f"{path}: empty journal")
    try:
        payload = json.loads(first)
    except json.JSONDecodeError as error:
        raise JournalError(f"{path}:1: corrupt header: {error}") from None
    return CampaignHeader.from_json_dict(payload)


class CampaignJournal:
    """Append-only journal of one campaign's per-seed results."""

    def __init__(
        self, path: Union[str, Path], header: CampaignHeader
    ) -> None:
        self.path = Path(path)
        self.header = header
        self.completed: Dict[int, Dict[str, Number]] = {}
        #: per-seed worker registry snapshots, for records that carried
        #: one (seeds served from the result cache never do)
        self.worker_metrics: Dict[int, Dict[str, Number]] = {}
        self._stream = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        spec: object,
        seeds: Sequence[int],
        experiment: str = "",
    ) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous file)."""
        header = CampaignHeader(
            schema=SCHEMA_VERSION,
            fingerprint=campaign_fingerprint(spec, seeds, experiment),
            experiment=experiment,
            spec=spec_signature(spec),
            seeds=[int(seed) for seed in seeds],
        )
        journal = cls(path, header)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._stream = journal.path.open("w", buffering=1)
        journal._append_line(header.as_json_dict())
        return journal

    @classmethod
    def resume(cls, path: Union[str, Path]) -> "CampaignJournal":
        """Open an existing journal, loading its completed seeds, and
        position it for appending further records.  A torn final line
        (SIGKILL mid-write) is truncated away first, so the next append
        starts on a clean line boundary."""
        path = Path(path)
        if not path.exists():
            raise JournalError(f"no journal at {path}")
        payloads, clean_end = _read_lines(path)
        if not payloads:
            raise JournalError(f"{path}: empty journal")
        if clean_end < path.stat().st_size:
            os.truncate(path, clean_end)
        header = CampaignHeader.from_json_dict(payloads[0])
        journal = cls(path, header)
        known = set(header.seeds)
        for payload in payloads[1:]:
            try:
                seed = int(payload["seed"])  # type: ignore[arg-type]
                result = dict(payload["result"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError) as error:
                raise JournalError(
                    f"{path}: malformed record {payload!r}: {error}"
                ) from None
            if seed not in known:
                raise JournalError(
                    f"{path}: record for seed {seed} not in campaign seeds"
                )
            journal.completed[seed] = result
            metrics = payload.get("metrics")
            if metrics is not None:
                journal.worker_metrics[seed] = dict(metrics)  # type: ignore
        journal._stream = path.open("a", buffering=1)
        return journal

    def verify(self, fingerprint: str) -> None:
        """Refuse to mix this journal with a different campaign.

        The error names *both* fingerprints (the journal's and the
        requested campaign's) and the exact remediation commands, so a
        mismatch in a multi-campaign job directory is debuggable from
        the message alone.
        """
        if self.header.fingerprint != fingerprint:
            raise JournalError(
                f"{self.path}: journal fingerprint "
                f"{self.header.fingerprint} "
                f"(experiment {self.header.experiment or '?'!r}, "
                f"{len(self.header.seeds)} seeds) does not match the "
                f"requested campaign fingerprint {fingerprint}; the "
                f"spec, seeds, or schema changed.  Either continue the "
                f"journal's own campaign with:\n"
                f"    python -m repro replicate --resume {self.path}\n"
                f"or start a fresh journal for the new campaign with:\n"
                f"    python -m repro replicate <EXPERIMENT> --journal "
                f"<NEW_PATH>\n"
                f"(or delete {self.path} if its results are disposable)"
            )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        seed: int,
        result: Mapping[str, Number],
        metrics: Optional[Mapping[str, Number]] = None,
    ) -> None:
        """Durably append one completed seed (optionally with the
        worker's registry snapshot riding on the same record)."""
        payload: Dict[str, object] = {
            "seed": int(seed), "result": dict(result),
        }
        if metrics is not None:
            payload["metrics"] = dict(metrics)
            self.worker_metrics[int(seed)] = dict(metrics)
        self._append_line(payload)
        self.completed[int(seed)] = dict(result)

    def _append_line(self, payload: Dict[str, object]) -> None:
        if self._stream is None:
            raise JournalError(f"{self.path}: journal is closed")
        _chaos_disk_full_check()
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def pending(self) -> List[int]:
        """Campaign seeds with no journaled result yet, in seed order."""
        return [s for s in self.header.seeds if s not in self.completed]

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.flush()
                os.fsync(self._stream.fileno())
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
