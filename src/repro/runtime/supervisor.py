"""Supervised process-pool map: timeouts, bounded retry, pool respawn.

``run_replications`` fans seeds across a ``ProcessPoolExecutor`` and
hopes: one OOM-killed worker raises ``BrokenProcessPool`` and discards
every completed seed.  :class:`Supervisor` wraps the same fan-out with
the recovery ladder a long campaign needs:

* **per-task wall-clock timeouts** — a hung seed is abandoned, its
  worker pool recycled, and the seed requeued;
* **bounded retry with deterministic backoff** — a failed seed retries
  up to ``max_retries`` times; the backoff delay is a pure function of
  (campaign fingerprint, seed, attempt), so reruns pace identically;
* **``BrokenProcessPool`` recovery** — a dead worker poisons the whole
  pool, so the supervisor respawns it and requeues every in-flight
  seed;
* **graceful degradation** — after ``max_pool_respawns`` pool deaths the
  supervisor stops trusting process isolation and finishes the
  remaining seeds serially in-process.

Per-seed results are delivered through an ``on_result`` callback the
moment they complete (the campaign layer journals them there), so
progress survives any later failure.  Results are returned keyed by
seed; ordering is the caller's concern, which is how the campaign layer
keeps aggregates bit-identical to a serial run.

Supervision is observable: retries, respawns and timeouts emit
``worker_retry``/``pool_respawn`` events on a :class:`TraceBus` (with
wall-clock ``time_ns``) and count into ``runtime.*`` metrics.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

from repro.analysis.parallel import effective_workers, resolve_jobs
from repro.analysis.stats import Number, ScenarioFn
from repro.obs.events import (
    POOL_RESPAWN,
    SEED_FAILED,
    SEED_FINISHED,
    SEED_RETRIED,
    SEED_STARTED,
    WORKER_RETRY,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceBus
from repro.runtime.telemetry import CampaignTelemetry, CapturedScenario


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the recovery ladder."""

    #: per-task wall-clock budget; ``None`` disables timeouts
    timeout_s: Optional[float] = None
    #: retries per seed after its first attempt
    max_retries: int = 2
    #: first backoff delay; attempt ``n`` waits ~``base * 2**(n-1)``
    backoff_base_s: float = 0.05
    #: ceiling on any single backoff delay
    backoff_cap_s: float = 2.0
    #: pool deaths tolerated before degrading to the serial path
    max_pool_respawns: int = 3
    #: how often the supervisor wakes to check deadlines
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be >= 0")


def backoff_delay(
    fingerprint: str, seed: int, attempt: int, policy: SupervisorPolicy
) -> float:
    """Deterministic jittered exponential backoff.

    A pure function of its arguments: rerunning a campaign replays the
    same delays, and distinct seeds decorrelate so a broken pool's
    requeued seeds do not stampede back in lockstep.
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    base = min(
        policy.backoff_cap_s, policy.backoff_base_s * (2 ** (attempt - 1))
    )
    jitter = random.Random(f"{fingerprint}:{seed}:{attempt}").uniform(0.5, 1.0)
    return base * jitter


@dataclass
class SeedFailure:
    """Why one seed permanently failed."""

    seed: int
    attempts: int
    reason: str


@dataclass
class SupervisedOutcome:
    """Everything one supervised map learned."""

    results: Dict[int, Mapping[str, Number]] = field(default_factory=dict)
    failures: Dict[int, SeedFailure] = field(default_factory=dict)
    #: per-seed worker registry snapshots (``capture_metrics=True`` only)
    worker_metrics: Dict[int, Dict[str, Number]] = field(default_factory=dict)
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    #: the supervisor gave up on process isolation and finished serially
    degraded: bool = False
    #: a drain request stopped the map early: in-flight seeds finished
    #: (and were delivered), queued seeds were left unrun
    drained: bool = False


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: terminate workers, abandon their work."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pools may refuse
        pass


class Supervisor:
    """Run ``scenario(seed)`` for many seeds under the recovery ladder."""

    def __init__(
        self,
        policy: Optional[SupervisorPolicy] = None,
        trace: Optional[TraceBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        fingerprint: str = "",
        telemetry: Optional[CampaignTelemetry] = None,
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self.trace = trace or TraceBus()
        self.metrics = metrics or MetricsRegistry()
        self.fingerprint = fingerprint
        self.telemetry = telemetry
        self._capture = False
        self._started_monotonic = 0.0
        self._total_seeds = 0
        self._done_seeds = 0
        self._drain = False

    def request_drain(self) -> None:
        """Ask the running map to stop gracefully: every in-flight seed
        finishes (and is delivered through ``on_result``), no further
        seed is dispatched, and :attr:`SupervisedOutcome.drained` is
        set.  Safe to call from a signal handler — it only flips a flag
        the scheduling loop polls."""
        self._drain = True

    @property
    def draining(self) -> bool:
        return self._drain

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **data: object) -> None:
        if self.trace.enabled:
            self.trace.emit(kind, time.time_ns(), **data)

    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(f"runtime.{name}").add(amount)

    def _telemetry(self, kind: str, **data: object) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(kind, **data)

    def _eta_s(self) -> Optional[float]:
        """Remaining-seconds estimate from the completed-seed rate.

        Pure progress arithmetic: with ``done`` seeds finished in
        ``elapsed`` wall seconds, the remaining seeds finish in
        ``remaining * elapsed / done`` at the same rate.  ``None`` until
        the first completion (no rate to extrapolate)."""
        if self._done_seeds <= 0 or self._total_seeds <= 0:
            return None
        elapsed = time.monotonic() - self._started_monotonic
        remaining = self._total_seeds - self._done_seeds
        return round(remaining * elapsed / self._done_seeds, 3)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def map(
        self,
        scenario: ScenarioFn,
        seeds: Sequence[int],
        jobs: Optional[int] = None,
        on_result: Optional[Callable[..., None]] = None,
        capture_metrics: bool = False,
    ) -> SupervisedOutcome:
        """Supervised equivalent of ``pool.map(scenario, seeds)``.

        Never raises for a failing *seed* — permanent failures land in
        ``outcome.failures``.  ``KeyboardInterrupt`` tears the pool down
        and propagates; everything already completed has been delivered
        through ``on_result``.

        ``capture_metrics=True`` wraps the scenario in
        :class:`~repro.runtime.telemetry.CapturedScenario`: each seed
        additionally ships its systems' registry snapshot back, landing
        in ``outcome.worker_metrics[seed]``, and ``on_result`` is called
        with three arguments ``(seed, result, metrics)`` instead of two.
        """
        seeds = [int(seed) for seed in seeds]
        outcome = SupervisedOutcome()
        if not seeds:
            return outcome
        self._capture = capture_metrics
        self._started_monotonic = time.monotonic()
        self._total_seeds = len(seeds)
        self._done_seeds = 0
        if capture_metrics:
            scenario = CapturedScenario(scenario)
        workers = effective_workers(resolve_jobs(jobs), len(seeds))
        if workers <= 1:
            self._run_serial(scenario, seeds, outcome, on_result)
        else:
            self._run_pooled(scenario, seeds, workers, outcome, on_result)
        outcome.drained = self._drain and not all(
            seed in outcome.results or seed in outcome.failures
            for seed in seeds
        )
        return outcome

    # ------------------------------------------------------------------
    # Serial path (one worker, or degraded mode)
    # ------------------------------------------------------------------

    def _run_serial(
        self,
        scenario: ScenarioFn,
        seeds: Sequence[int],
        outcome: SupervisedOutcome,
        on_result: Optional[Callable[[int, Mapping[str, Number]], None]],
    ) -> None:
        """In-process loop with the same retry budget (no timeouts: a
        hung seed cannot be preempted without process isolation)."""
        queue: Deque[int] = deque(
            seed for seed in seeds if seed not in outcome.results
        )
        attempts: Dict[int, int] = {seed: 0 for seed in seeds}
        while queue:
            if self._drain:
                return
            seed = queue.popleft()
            attempts[seed] += 1
            self._telemetry(SEED_STARTED, seed=seed, attempt=attempts[seed])
            try:
                result = scenario(seed)
            except KeyboardInterrupt:
                raise
            except Exception as error:
                self._requeue(
                    seed, attempts, queue, outcome,
                    reason=f"error: {error!r}", sleep=True,
                )
                continue
            self._complete(seed, result, outcome, on_result)

    # ------------------------------------------------------------------
    # Pooled path
    # ------------------------------------------------------------------

    def _run_pooled(
        self,
        scenario: ScenarioFn,
        seeds: Sequence[int],
        workers: int,
        outcome: SupervisedOutcome,
        on_result: Optional[Callable[[int, Mapping[str, Number]], None]],
    ) -> None:
        policy = self.policy
        queue: Deque[int] = deque(seeds)
        attempts: Dict[int, int] = {seed: 0 for seed in seeds}
        ready_at: Dict[int, float] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        inflight: Dict[object, int] = {}
        deadlines: Dict[object, Optional[float]] = {}
        try:
            while queue or inflight:
                if self._drain and not inflight:
                    # Draining with nothing in flight: queued seeds stay
                    # unrun (the journal resumes them later).
                    return
                now = time.monotonic()
                # Submit every ready seed up to the worker count, so a
                # task's deadline starts roughly when it starts running.
                while queue and len(inflight) < workers and not self._drain:
                    seed = self._pop_ready(queue, ready_at, now)
                    if seed is None:
                        break
                    attempts[seed] += 1
                    try:
                        future = pool.submit(scenario, seed)
                    except BrokenProcessPool:
                        # A worker died between polls and the executor
                        # flagged itself broken before ``wait`` could
                        # deliver the failed futures.  The seed never
                        # ran: refund it and recycle the pool.
                        attempts[seed] -= 1
                        queue.appendleft(seed)
                        pool = self._respawn(
                            pool, inflight, deadlines, attempts, queue,
                            outcome, ready_at, workers,
                            reason="worker died",
                        )
                        if pool is None:
                            self._degrade(
                                scenario, queue, attempts, outcome,
                                on_result, ready_at,
                            )
                            return
                        continue
                    inflight[future] = seed
                    deadlines[future] = (
                        now + policy.timeout_s
                        if policy.timeout_s is not None else None
                    )
                    self._telemetry(
                        SEED_STARTED, seed=seed, attempt=attempts[seed]
                    )
                if not inflight:
                    if self._drain:
                        return
                    # Everything pending is backing off; sleep it out.
                    gate = min(ready_at.get(s, now) for s in queue)
                    time.sleep(max(0.0, min(gate - now, 0.25)))
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=policy.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    seed = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._requeue(
                            seed, attempts, queue, outcome,
                            reason="worker died", ready_at=ready_at,
                        )
                    except KeyboardInterrupt:  # pragma: no cover - defensive
                        raise
                    except Exception as error:
                        self._requeue(
                            seed, attempts, queue, outcome,
                            reason=f"error: {error!r}", ready_at=ready_at,
                        )
                    else:
                        self._complete(seed, result, outcome, on_result)
                if broken:
                    pool = self._respawn(
                        pool, inflight, deadlines, attempts, queue,
                        outcome, ready_at, workers, reason="worker died",
                    )
                    if pool is None:
                        self._degrade(
                            scenario, queue, attempts, outcome,
                            on_result, ready_at,
                        )
                        return
                    continue
                pool_after_timeout = self._check_deadlines(
                    pool, inflight, deadlines, attempts, queue,
                    outcome, ready_at, workers,
                )
                if pool_after_timeout is _DEGRADE:
                    self._degrade(
                        scenario, queue, attempts, outcome,
                        on_result, ready_at,
                    )
                    return
                if pool_after_timeout is not None:
                    pool = pool_after_timeout
        except KeyboardInterrupt:
            if pool is not None:
                _kill_pool(pool)
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _pop_ready(
        self, queue: Deque[int], ready_at: Dict[int, float], now: float
    ) -> Optional[int]:
        """First queued seed whose backoff gate has passed (queue order
        otherwise preserved)."""
        for _ in range(len(queue)):
            seed = queue.popleft()
            if ready_at.get(seed, 0.0) <= now:
                return seed
            queue.append(seed)
        return None

    def _check_deadlines(
        self, pool, inflight, deadlines, attempts, queue, outcome,
        ready_at, workers,
    ):
        """Expire overdue tasks.  A hung worker can only be reclaimed by
        recycling the pool, so any expiry implies a respawn; the other
        in-flight seeds are requeued through the same retry budget."""
        if self.policy.timeout_s is None:
            return None
        now = time.monotonic()
        expired = [
            future for future, deadline in deadlines.items()
            if deadline is not None and now > deadline
            and future in inflight
        ]
        if not expired:
            return None
        for future in expired:
            seed = inflight.pop(future)
            deadlines.pop(future, None)
            outcome.timeouts += 1
            self._count("task_timeouts")
            self._requeue(
                seed, attempts, queue, outcome,
                reason=f"timeout after {self.policy.timeout_s}s",
                ready_at=ready_at,
            )
        replacement = self._respawn(
            pool, inflight, deadlines, attempts, queue, outcome,
            ready_at, workers, reason="task timeout",
        )
        return replacement if replacement is not None else _DEGRADE

    def _respawn(
        self, pool, inflight, deadlines, attempts, queue, outcome,
        ready_at, workers, reason,
    ) -> Optional[ProcessPoolExecutor]:
        """Kill and replace the pool, requeueing every in-flight seed.

        A broken pool cannot say *which* worker took it down, so every
        in-flight seed burns one attempt — deterministic, where guessing
        at innocence would race against exception delivery.  With the
        default retry budget innocents recover on the fresh pool.
        Returns ``None`` once the respawn budget is spent."""
        for future, seed in list(inflight.items()):
            self._requeue(
                seed, attempts, queue, outcome,
                reason=f"pool lost ({reason})", ready_at=ready_at,
            )
        inflight.clear()
        deadlines.clear()
        _kill_pool(pool)
        outcome.respawns += 1
        self._count("pool_respawns")
        self._emit(
            POOL_RESPAWN,
            respawn=outcome.respawns,
            reason=reason,
            requeued=len(queue),
        )
        if outcome.respawns > self.policy.max_pool_respawns:
            return None
        return ProcessPoolExecutor(max_workers=workers)

    def _degrade(
        self, scenario, queue, attempts, outcome, on_result, ready_at,
    ) -> None:
        """The pool keeps dying: finish the remaining seeds serially."""
        outcome.degraded = True
        self._count("serial_fallbacks")
        remaining = list(queue)
        queue.clear()
        serial_queue: Deque[int] = deque(remaining)
        while serial_queue:
            if self._drain:
                return
            seed = serial_queue.popleft()
            gate = ready_at.get(seed, 0.0) - time.monotonic()
            if gate > 0:
                time.sleep(gate)
            attempts[seed] += 1
            self._telemetry(SEED_STARTED, seed=seed, attempt=attempts[seed])
            try:
                result = scenario(seed)
            except KeyboardInterrupt:
                raise
            except Exception as error:
                self._requeue(
                    seed, attempts, serial_queue, outcome,
                    reason=f"error: {error!r}", sleep=True,
                )
                continue
            self._complete(seed, result, outcome, on_result)

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------

    def _complete(self, seed, result, outcome, on_result) -> None:
        metrics: Optional[Dict[str, Number]] = None
        if self._capture:
            # CapturedScenario envelope: unwrap the flat result and keep
            # the worker's registry snapshot beside it.
            metrics = dict(result["metrics"])
            result = result["result"]
            outcome.worker_metrics[seed] = metrics
        outcome.results[seed] = result
        self._count("seeds_completed")
        self._done_seeds += 1
        self._telemetry(
            SEED_FINISHED,
            seed=seed,
            done=self._done_seeds,
            total=self._total_seeds,
            eta_s=self._eta_s(),
        )
        if on_result is not None:
            if self._capture:
                on_result(seed, result, metrics)
            else:
                on_result(seed, result)

    def _requeue(
        self, seed, attempts, queue, outcome, reason,
        ready_at: Optional[Dict[int, float]] = None, sleep: bool = False,
    ) -> None:
        """Retry a failed seed, or record it as permanently failed once
        its budget (1 first attempt + ``max_retries``) is spent."""
        attempt = attempts[seed]
        if attempt >= 1 + self.policy.max_retries:
            outcome.failures[seed] = SeedFailure(
                seed=seed, attempts=attempt, reason=reason
            )
            self._count("seeds_failed")
            self._telemetry(
                SEED_FAILED, seed=seed, attempts=attempt, reason=reason
            )
            return
        delay = backoff_delay(self.fingerprint, seed, attempt, self.policy)
        outcome.retries += 1
        self._count("worker_retries")
        self._emit(
            WORKER_RETRY,
            seed=seed, attempt=attempt, reason=reason,
            delay_s=round(delay, 6),
        )
        self._telemetry(
            SEED_RETRIED,
            seed=seed, attempt=attempt, reason=reason,
            delay_s=round(delay, 6),
        )
        if sleep:
            time.sleep(delay)
        elif ready_at is not None:
            ready_at[seed] = time.monotonic() + delay
        queue.append(seed)


#: sentinel: the respawn budget is spent, fall back to serial
_DEGRADE = object()
