"""Resilient campaign runtime: checkpoint, supervise, resume.

The simulator's evidence base is long seeded replication campaigns, and
:mod:`repro.analysis.parallel` runs them as a single-shot process-pool
fan-out — one worker crash, OOM kill, or Ctrl-C discards every
completed seed.  This package hardens the harness itself:

* :mod:`repro.runtime.journal`    — crash-safe per-seed result journal
  (fsync'd JSONL, schema-versioned header keyed on a campaign
  fingerprint of spec + seeds);
* :mod:`repro.runtime.supervisor` — supervised pool map with per-task
  timeouts, bounded deterministic-backoff retry, ``BrokenProcessPool``
  respawn, and graceful degradation to a serial path;
* :mod:`repro.runtime.campaign`   — ties both together behind
  :func:`run_campaign`, whose ``resume=True`` skips journaled seeds and
  merges to aggregates bit-identical to an uninterrupted run;
* :mod:`repro.runtime.queue`      — durable flock-serialized op-log job
  queue (priority lanes, idempotent fingerprint-keyed submission);
* :mod:`repro.runtime.service`    — the long-running campaign service:
  bounded worker fan-out over the queue with admission control,
  graceful SIGTERM drain, per-job circuit breaking, and warm-cache
  inline completion.

``python -m repro replicate --journal/--resume`` and ``python -m repro
serve`` are the CLI surfaces; ``docs/RESILIENCE.md`` documents the
journal and queue formats and the recovery ladder.
"""

from repro.runtime.campaign import (
    CampaignIncomplete,
    CampaignInterrupted,
    CampaignResult,
    rebuild_from_signature,
    rebuild_spec,
    run_campaign,
)
from repro.runtime.journal import (
    SCHEMA_VERSION,
    CampaignHeader,
    CampaignJournal,
    JournalError,
    JournalSnapshot,
    campaign_fingerprint,
    load_journal,
    peek_header,
    spec_signature,
)
from repro.runtime.report import (
    build_run_report,
    render_run_report,
    summarize_telemetry,
    write_run_report,
)
from repro.runtime.queue import (
    PRIORITIES,
    JobQueue,
    JobRecord,
    QueueError,
    load_queue,
)
from repro.runtime.service import (
    EXIT_DRAINED,
    Admission,
    CampaignService,
    ServiceConfig,
    job_backoff_delay,
    run_worker,
)
from repro.runtime.supervisor import (
    SeedFailure,
    SupervisedOutcome,
    Supervisor,
    SupervisorPolicy,
    backoff_delay,
)
from repro.runtime.telemetry import (
    CampaignTelemetry,
    CapturedScenario,
    merge_metric_snapshots,
    read_telemetry,
    telemetry_path,
)

__all__ = [
    "Admission",
    "CampaignHeader",
    "CampaignIncomplete",
    "CampaignInterrupted",
    "CampaignJournal",
    "CampaignResult",
    "CampaignService",
    "CampaignTelemetry",
    "CapturedScenario",
    "EXIT_DRAINED",
    "JobQueue",
    "JobRecord",
    "JournalError",
    "JournalSnapshot",
    "PRIORITIES",
    "QueueError",
    "SCHEMA_VERSION",
    "SeedFailure",
    "ServiceConfig",
    "SupervisedOutcome",
    "Supervisor",
    "SupervisorPolicy",
    "backoff_delay",
    "build_run_report",
    "campaign_fingerprint",
    "job_backoff_delay",
    "load_journal",
    "load_queue",
    "merge_metric_snapshots",
    "peek_header",
    "read_telemetry",
    "rebuild_from_signature",
    "rebuild_spec",
    "render_run_report",
    "run_campaign",
    "run_worker",
    "spec_signature",
    "summarize_telemetry",
    "telemetry_path",
    "write_run_report",
]
