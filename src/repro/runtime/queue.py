"""Durable on-disk job queue for the long-running campaign service.

The queue is a single append-only JSONL log (``queue.jsonl``) of
*operations* — one schema-versioned header line, then ``submit`` /
``state`` / ``cancel`` ops — folded into per-job state on load.  The
design mirrors the campaign journal's durability contract:

* every op is one ``write`` call, flushed and fsync'd, so a SIGKILL
  between ops loses nothing and a SIGKILL mid-write leaves at most one
  torn final line;
* appends take an ``flock`` on the log, so the service process and any
  number of ``repro serve submit``/``cancel`` processes may write the
  same queue without interleaving; a torn final line (crash mid-write)
  is truncated away under the same lock before the next append, so a
  fresh op can never concatenate onto a fragment;
* readers fold ops **in log order** and every op is idempotent
  (last-writer-wins state sets, create-if-absent submits), so replaying
  the log from the top always reconstructs the same queue — which is
  exactly what a service restart does.

Jobs are keyed by their **campaign fingerprint** (see
:func:`repro.runtime.journal.campaign_fingerprint`), which makes
submission idempotent: resubmitting a queued or running job is a no-op,
resubmitting a ``done`` job answers from its recorded result, and
resubmitting a ``failed``/``cancelled`` job re-arms it (fresh attempt
budget) — never a duplicate entry.

Scheduling metadata lives with each job: a **priority class** (one of
:data:`PRIORITIES`, each a FIFO lane — the service always drains the
highest non-empty lane first) and a ``not_before`` wall-clock gate the
circuit breaker uses for deterministic backoff between attempts.
"""

from __future__ import annotations

import fcntl
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.runtime.journal import JournalError, _read_lines

#: queue log file name inside a service directory
QUEUE_FILE = "queue.jsonl"

#: value of the header's ``kind`` field
QUEUE_KIND = "repro-service-queue"

#: bump when the op layout changes; older logs refuse to load
QUEUE_SCHEMA = 1

#: priority classes, highest first; each is its own FIFO lane
PRIORITIES = ("high", "normal", "low")

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


class QueueError(ValueError):
    """The queue log is missing, malformed, or from another schema."""


@dataclass
class JobRecord:
    """One job's folded state (everything the ops said, last wins)."""

    job_id: str
    experiment: str
    spec: Dict[str, object]
    seeds: List[int]
    priority: str = "normal"
    #: log-order sequence number; FIFO position within the lane
    seq: int = 0
    #: worker processes the job's campaign may use (``None``: default)
    jobs: Optional[int] = None
    timeout_s: Optional[float] = None
    max_retries: int = 2
    state: str = QUEUED
    #: service-level attempts burned (worker forks that failed)
    attempts: int = 0
    reason: str = ""
    #: wall-clock gate: not schedulable before this time (backoff)
    not_before: float = 0.0
    cancel_requested: bool = False
    submitted_at: float = 0.0
    #: idempotent resubmissions observed after the first
    resubmits: int = 0

    def as_json_dict(self) -> Dict[str, object]:
        return {
            "id": self.job_id,
            "experiment": self.experiment,
            "spec": self.spec,
            "seeds": list(self.seeds),
            "priority": self.priority,
            "jobs": self.jobs,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "submitted_at": self.submitted_at,
        }


def _locked_append(path: Path, payload: Mapping[str, object]) -> None:
    """Append one op under an exclusive lock, healing any torn tail.

    The lock serializes concurrent submitters against the service; the
    tail check guarantees a crash mid-write (no trailing newline) never
    corrupts the *next* writer's line.
    """
    with path.open("a+b") as stream:
        fcntl.flock(stream.fileno(), fcntl.LOCK_EX)
        try:
            stream.seek(0, os.SEEK_END)
            size = stream.tell()
            if size > 0:
                stream.seek(size - 1)
                if stream.read(1) != b"\n":
                    # torn tail from a crash mid-write: truncate back to
                    # the last clean line boundary before appending
                    stream.seek(0)
                    raw = stream.read(size)
                    clean = raw.rfind(b"\n") + 1
                    stream.truncate(clean)
                    stream.seek(0, os.SEEK_END)
            line = json.dumps(dict(payload), sort_keys=True) + "\n"
            stream.write(line.encode("utf-8"))
            stream.flush()
            os.fsync(stream.fileno())
        finally:
            fcntl.flock(stream.fileno(), fcntl.LOCK_UN)


class JobQueue:
    """Folded view of one queue log, with locked append and tail-read.

    One instance per process; the service keeps one open for its whole
    life and calls :meth:`poll` each tick to fold ops other processes
    appended.  Ops this process appends are *not* applied eagerly — they
    come back through the next :meth:`poll` like everyone else's, so
    there is exactly one application order: the log's.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.jobs: Dict[str, JobRecord] = {}
        self._offset = 0
        self._seq = 0
        self._header_seen = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path]) -> "JobQueue":
        """Open (creating if needed) a queue log and fold it."""
        queue = cls(path)
        queue.path.parent.mkdir(parents=True, exist_ok=True)
        if not queue.path.exists() or queue.path.stat().st_size == 0:
            _locked_append(
                queue.path, {"kind": QUEUE_KIND, "schema": QUEUE_SCHEMA}
            )
        queue.poll()
        if not queue._header_seen:
            raise QueueError(f"{queue.path}: not a service queue log")
        return queue

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def poll(self) -> List[Dict[str, object]]:
        """Fold every complete op appended since the last poll.

        Returns the newly applied ops (the service turns them into
        telemetry events).  A torn final line is left pending — the
        next locked append truncates it, and a clean line will reappear
        at the same offset if the op ever completes.
        """
        try:
            with self.path.open("rb") as stream:
                stream.seek(self._offset)
                raw = stream.read()
        except FileNotFoundError:
            raise QueueError(f"no queue log at {self.path}") from None
        applied: List[Dict[str, object]] = []
        consumed = 0
        for raw_line in raw.splitlines(keepends=True):
            if not raw_line.endswith(b"\n"):
                break  # torn or in-flight tail; re-read next poll
            consumed += len(raw_line)
            line = raw_line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                # A healed-over torn line can only ever be the *final*
                # line; garbage mid-log means real corruption.
                raise QueueError(
                    f"{self.path}: corrupt op at byte "
                    f"{self._offset + consumed - len(raw_line)}"
                ) from None
            self._apply(payload)
            applied.append(payload)
        self._offset += consumed
        return applied

    def _apply(self, op: Mapping[str, object]) -> None:
        if op.get("kind") == QUEUE_KIND:
            schema = int(op.get("schema", -1))  # type: ignore[arg-type]
            if schema != QUEUE_SCHEMA:
                raise QueueError(
                    f"{self.path}: queue schema {schema} != "
                    f"supported {QUEUE_SCHEMA}"
                )
            self._header_seen = True
            return
        kind = op.get("op")
        if kind == "submit":
            self._apply_submit(op["job"])  # type: ignore[index]
        elif kind == "state":
            self._apply_state(op)
        elif kind == "cancel":
            self._apply_cancel(op)
        else:
            raise QueueError(f"{self.path}: unknown op {kind!r}")

    def _apply_submit(self, payload: Mapping[str, object]) -> None:
        job_id = str(payload["id"])
        self._seq += 1
        existing = self.jobs.get(job_id)
        if existing is not None:
            if existing.state in (QUEUED, RUNNING, DONE):
                existing.resubmits += 1
                return
            # failed/cancelled: re-arm with a fresh budget, back of lane
            existing.state = QUEUED
            existing.attempts = 0
            existing.reason = ""
            existing.not_before = 0.0
            existing.cancel_requested = False
            existing.seq = self._seq
            existing.resubmits += 1
            return
        self.jobs[job_id] = JobRecord(
            job_id=job_id,
            experiment=str(payload.get("experiment", "")),
            spec=dict(payload["spec"]),  # type: ignore[arg-type]
            seeds=[int(s) for s in payload["seeds"]],  # type: ignore
            priority=str(payload.get("priority", "normal")),
            seq=self._seq,
            jobs=(
                int(payload["jobs"])  # type: ignore[arg-type]
                if payload.get("jobs") is not None else None
            ),
            timeout_s=(
                float(payload["timeout_s"])  # type: ignore[arg-type]
                if payload.get("timeout_s") is not None else None
            ),
            max_retries=int(payload.get("max_retries", 2)),  # type: ignore
            submitted_at=float(payload.get("submitted_at", 0.0)),  # type: ignore
        )

    def _apply_state(self, op: Mapping[str, object]) -> None:
        job = self.jobs.get(str(op.get("id")))
        if job is None:
            return  # state for a job this log never submitted: ignore
        state = str(op.get("state"))
        if state not in JOB_STATES:
            raise QueueError(f"{self.path}: unknown job state {state!r}")
        job.state = state
        if op.get("attempts") is not None:
            job.attempts = int(op["attempts"])  # type: ignore[arg-type]
        job.reason = str(op.get("reason", job.reason) or "")
        job.not_before = float(op.get("not_before", 0.0) or 0.0)
        if state != RUNNING:
            job.cancel_requested = False

    def _apply_cancel(self, op: Mapping[str, object]) -> None:
        job = self.jobs.get(str(op.get("id")))
        if job is None:
            return
        if job.state == QUEUED:
            job.state = CANCELLED
            job.reason = str(op.get("reason", "") or "cancelled")
        elif job.state == RUNNING:
            job.cancel_requested = True

    # ------------------------------------------------------------------
    # Writing (all locked appends; applied via the next poll)
    # ------------------------------------------------------------------

    def append_submit(self, job: Mapping[str, object]) -> None:
        _locked_append(self.path, {"op": "submit", "job": dict(job)})

    def append_state(
        self,
        job_id: str,
        state: str,
        attempts: Optional[int] = None,
        reason: str = "",
        not_before: float = 0.0,
    ) -> None:
        if state not in JOB_STATES:
            raise QueueError(f"unknown job state {state!r}")
        op: Dict[str, object] = {
            "op": "state", "id": job_id, "state": state,
        }
        if attempts is not None:
            op["attempts"] = int(attempts)
        if reason:
            op["reason"] = reason
        if not_before:
            op["not_before"] = not_before
        _locked_append(self.path, op)

    def append_cancel(self, job_id: str, reason: str = "") -> None:
        op: Dict[str, object] = {"op": "cancel", "id": job_id}
        if reason:
            op["reason"] = reason
        _locked_append(self.path, op)

    # ------------------------------------------------------------------
    # Scheduling views
    # ------------------------------------------------------------------

    def lanes(self) -> Dict[str, List[JobRecord]]:
        """Queued jobs per priority class, FIFO within each lane."""
        lanes: Dict[str, List[JobRecord]] = {p: [] for p in PRIORITIES}
        for job in self.jobs.values():
            if job.state == QUEUED:
                lane = job.priority if job.priority in lanes else "normal"
                lanes[lane].append(job)
        for lane in lanes.values():
            lane.sort(key=lambda job: job.seq)
        return lanes

    def next_ready(self, now: Optional[float] = None) -> Optional[JobRecord]:
        """The job the service should launch next: the oldest entry of
        the highest-priority non-empty lane whose backoff gate passed."""
        if now is None:
            now = time.time()
        lanes = self.lanes()
        for priority in PRIORITIES:
            for job in lanes[priority]:
                if job.not_before <= now:
                    return job
        return None

    def depth(self) -> int:
        """Jobs waiting or running (the backpressure quantity)."""
        return sum(
            1 for job in self.jobs.values()
            if job.state in (QUEUED, RUNNING)
        )

    def counts(self) -> Dict[str, int]:
        """Jobs per state (always every state, zeros included)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    def by_state(self, state: str) -> List[JobRecord]:
        return sorted(
            (job for job in self.jobs.values() if job.state == state),
            key=lambda job: job.seq,
        )


def load_queue(path: Union[str, Path]) -> JobQueue:
    """Read-only fold of an existing queue log (``repro serve status``).

    Unlike :meth:`JobQueue.open`, never creates or truncates anything,
    so it is safe to point at a live service's queue.
    """
    path = Path(path)
    if not path.exists():
        raise QueueError(f"no queue log at {path}")
    queue = JobQueue(path)
    payloads, _ = _read_lines(path)
    if not payloads:
        raise QueueError(f"{path}: empty queue log")
    try:
        for payload in payloads:
            queue._apply(payload)
    except JournalError as error:  # pragma: no cover - defensive
        raise QueueError(str(error)) from None
    if not queue._header_seen:
        raise QueueError(f"{path}: not a service queue log")
    return queue
