"""Live campaign telemetry: the journal's heartbeat sidecar.

The result journal records *what finished*; this module records *what is
happening*.  A :class:`CampaignTelemetry` stream is a JSONL sidecar next
to the journal (``<journal>.telemetry``) carrying the campaign lifecycle
— ``campaign_started``, per-seed ``seed_started`` / ``seed_finished``
(with an ETA derived from completed-seed rates) / ``seed_retried`` /
``seed_failed`` / ``seed_cached``, and ``campaign_finished`` — each line
flushed and fsync'd like a journal record, so ``python -m repro status``
can watch a campaign *mid-flight* from another terminal and a crash
leaves at most one torn final line.

Record shape is deliberately the trace-event wire format
(``{"kind": ..., "t": ..., **data}`` with wall-clock ``time_ns``), so
the existing :func:`repro.obs.trace.iter_jsonl` reader — torn-final-line
tolerance included — parses a telemetry stream unchanged.

The module also carries the worker-metrics plumbing: a picklable
:class:`CapturedScenario` wrapper that runs one seed inside an ambient
:func:`~repro.obs.runtime.observe` block and ships the built systems'
:class:`~repro.obs.registry.MetricsRegistry` snapshots back with the
result, plus :func:`merge_metric_snapshots` which folds those per-seed
snapshots into one campaign-level metrics map without ever dropping a
key (``assert_covers`` enforced).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.stats import Number, ScenarioFn
from repro.obs.events import TraceEvent
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import iter_jsonl

#: the sidecar lives next to its journal under this suffix
TELEMETRY_SUFFIX = ".telemetry"


def telemetry_path(journal_path: Union[str, Path]) -> Path:
    """Where the telemetry sidecar of a journal lives."""
    return Path(str(journal_path) + TELEMETRY_SUFFIX)


class CampaignTelemetry:
    """Append-only fsync'd JSONL stream of campaign lifecycle events."""

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("a" if append else "w", buffering=1)
        self.events_written = 0

    def emit(self, kind: str, **data: object) -> None:
        """Durably append one lifecycle event (wall-clock ``time_ns``)."""
        if self._stream is None:
            return
        payload = {"kind": kind, "t": time.time_ns(), **data}
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self.events_written += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CampaignTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_telemetry(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a telemetry sidecar; missing or empty files are simply *no
    events yet* (a campaign that has not started), never an error."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        return list(iter_jsonl(path))
    except ValueError:
        # iter_jsonl treats a file with no valid line as an error; for a
        # heartbeat stream that just means nothing has been written yet.
        return []


# ----------------------------------------------------------------------
# Worker-side metrics capture
# ----------------------------------------------------------------------


class CapturedScenario:
    """Picklable wrapper: run one seed, ship its metrics back too.

    ``scenario(seed)`` normally returns a flat result mapping and throws
    its systems — registries and all — away.  The wrapper opens an
    ambient :func:`~repro.obs.runtime.observe` block (which registers
    every system built inside, configuring nothing), runs the scenario,
    and returns ``{"result": ..., "metrics": ...}`` where ``metrics`` is
    the merged registry snapshot of those systems.  Exceptions pass
    through untouched so the supervisor's retry ladder sees them as
    usual.
    """

    __slots__ = ("scenario",)

    def __init__(self, scenario: ScenarioFn) -> None:
        self.scenario = scenario

    def __getstate__(self):
        return self.scenario

    def __setstate__(self, state) -> None:
        self.scenario = state

    def __call__(self, seed: int) -> Dict[str, object]:
        from repro.obs.runtime import observe

        with observe() as session:
            result = self.scenario(seed)
        snapshots = [
            system.obs.metrics.snapshot() for system in session.systems
        ]
        metrics = merge_metric_snapshots(snapshots) if snapshots else {}
        return {"result": result, "metrics": metrics}


def merge_metric_snapshots(
    snapshots: Sequence[Mapping[str, Number]],
) -> Dict[str, Number]:
    """Fold registry snapshots into one map: ints sum, floats average.

    Integer counters (ACTs, fallbacks, cache hits) are totals, so they
    add; float gauges (hit rates, average latencies) are already
    normalized, so they mean over the snapshots that carry them.  The
    fold is deterministic in ``snapshots`` order, and ``assert_covers``
    guarantees the merge can never silently drop a key any input had.
    """
    values: Dict[str, List[Number]] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            values.setdefault(key, []).append(value)
    merged: Dict[str, Number] = {}
    for key, samples in values.items():
        if any(isinstance(sample, float) for sample in samples):
            merged[key] = sum(samples) / len(samples)
        else:
            merged[key] = sum(samples)
    if snapshots:
        registry = MetricsRegistry()
        registry.register_group("merged", merged)
        for snapshot in snapshots:
            registry.assert_covers(list(snapshot.keys()), "merged")
    return merged
