"""Long-running campaign service: queue, workers, backpressure, recovery.

:class:`CampaignService` turns the one-shot campaign runtime (journal +
supervisor + result cache, PRs 4–5) into a **service**: job specs enter
a durable :class:`~repro.runtime.queue.JobQueue`, a bounded set of
supervised worker processes drains it, and every robustness property of
a single campaign is preserved across jobs, restarts, and signals.

Scheduling & backpressure
    At most ``max_inflight`` jobs run at once; queued jobs wait in
    per-priority FIFO lanes (``high`` > ``normal`` > ``low``).
    **Admission control** happens at submit time: when the queue depth
    reaches ``max_queued`` or the service directory exceeds
    ``disk_budget_bytes``, the submission is *rejected with a reason*
    instead of being silently absorbed.

Idempotency & warm answers
    Jobs are keyed by the campaign fingerprint, so resubmission can
    never duplicate work: a queued/running job is a no-op, a ``done``
    job answers from its recorded result, and a job whose every seed is
    already in the shared :class:`~repro.analysis.cache.ResultCache`
    (or journal) completes **inline, forking no worker**.

Crash recovery
    Each job runs in its own worker process (``repro serve worker``)
    that journals every seed; a SIGKILL'd worker burns one attempt and
    the retry *resumes* from the journal (no lost or duplicated seeds —
    the aggregates stay bit-identical to an uninterrupted run).  A
    SIGKILL'd **service** leaves ``running`` markers in the queue log;
    the next ``serve`` reconciles them back to ``queued`` and resumes
    the same way.  Repeated failures trip a per-fingerprint **circuit
    breaker** after ``max_job_attempts`` attempts, with deterministic
    seeded backoff (:func:`~repro.runtime.supervisor.backoff_delay`)
    between attempts.

Graceful drain
    SIGTERM forwards to the workers, whose campaigns finish in-flight
    seeds, journal them, and exit :data:`EXIT_DRAINED`; the service
    requeues the jobs (no attempt burned) and exits 0.  Ctrl-C drains
    the same way but preserves the interrupted exit code (130) through
    the CLI wrapper.

Observability
    The service streams ``job_*``/``queue_depth`` lifecycle events to
    its own telemetry sidecar (``service.telemetry``, same JSONL wire
    format as campaign telemetry) and counts ``service.*`` metrics
    under ``assert_covers``; per-seed progress streams on each job's
    own ``<job>.journal.telemetry`` sidecar exactly as before.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.events import (
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_FINISHED,
    JOB_REJECTED,
    JOB_REQUEUED,
    JOB_STARTED,
    JOB_SUBMITTED,
    QUEUE_DEPTH,
    SERVICE_DRAIN,
    SERVICE_STARTED,
    SERVICE_STOPPED,
)
from repro.obs.registry import MetricsRegistry
from repro.runtime.campaign import rebuild_from_signature, run_campaign
from repro.runtime.journal import (
    JournalError,
    campaign_fingerprint,
    load_journal,
    spec_signature,
)
from repro.runtime.queue import (
    CANCELLED,
    DONE,
    FAILED,
    PRIORITIES,
    QUEUE_FILE,
    QUEUED,
    RUNNING,
    JobQueue,
    JobRecord,
    QueueError,
)
from repro.runtime.supervisor import SupervisorPolicy, backoff_delay
from repro.runtime.telemetry import CampaignTelemetry

#: a drained worker exits with this code: the job is incomplete but
#: nothing failed — requeue it without burning an attempt (EX_TEMPFAIL)
EXIT_DRAINED = 75

#: worker exit code for an interrupted (SIGINT) campaign — also a
#: requeue-without-burn, mirroring the CLI's 130 contract
EXIT_INTERRUPTED = 130

#: service telemetry sidecar, beside the queue log
SERVICE_TELEMETRY = "service.telemetry"

#: every ``service.*`` metric the service maintains; ``assert_covers``
#: makes forgetting to register a new one a hard error
SERVICE_METRIC_KEYS = (
    "jobs_submitted",
    "jobs_rejected",
    "jobs_completed",
    "jobs_failed",
    "jobs_requeued",
    "jobs_cancelled",
    "jobs_cached_warm",
    "worker_forks",
    "job_attempts",
    "drains",
)


class ServiceError(RuntimeError):
    """The service directory or a job is in an unusable state."""


@dataclass(frozen=True)
class ServiceConfig:
    """Backpressure, admission, and recovery knobs."""

    #: jobs running concurrently (each is one worker process)
    max_inflight: int = 2
    #: admission ceiling on queued + running jobs
    max_queued: int = 64
    #: admission ceiling on the service directory's on-disk bytes
    #: (``None`` disables the disk budget)
    disk_budget_bytes: Optional[int] = None
    #: circuit breaker: attempts per job before it is marked failed
    max_job_attempts: int = 3
    #: first job-level backoff delay; attempt ``n`` waits ~base*2**(n-1)
    backoff_base_s: float = 0.25
    #: ceiling on any single job-level backoff delay
    backoff_cap_s: float = 30.0
    #: serve-loop tick interval
    poll_s: float = 0.05
    #: SIGTERM drain: seconds workers get to salvage before SIGKILL
    drain_grace_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.max_job_attempts < 1:
            raise ValueError("max_job_attempts must be >= 1")
        if (
            self.disk_budget_bytes is not None
            and self.disk_budget_bytes <= 0
        ):
            raise ValueError("disk_budget_bytes must be positive or None")

    def backoff_policy(self) -> SupervisorPolicy:
        """The policy object job-level backoff delays derive from."""
        return SupervisorPolicy(
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
        )


#: the pseudo-seed job-level backoff keys on (seeds key per-seed delays)
JOB_BACKOFF_SEED = -1


def job_backoff_delay(
    fingerprint: str, attempt: int, config: ServiceConfig
) -> float:
    """Deterministic per-(fingerprint, attempt) circuit-breaker delay."""
    return backoff_delay(
        fingerprint, JOB_BACKOFF_SEED, attempt, config.backoff_policy()
    )


@dataclass(frozen=True)
class Admission:
    """What ``submit`` decided, and why."""

    accepted: bool
    job_id: str
    state: str
    reason: str
    #: a new queue entry was actually appended (idempotent hits are not)
    fresh: bool


def dir_bytes(root: Union[str, Path]) -> int:
    """Total size of every regular file under ``root`` (disk budget)."""
    total = 0
    for base, _dirs, files in os.walk(root):
        for name in files:
            try:
                total += os.stat(os.path.join(base, name)).st_size
            except OSError:  # pragma: no cover - raced unlink
                pass
    return total


def _worker_env() -> Dict[str, str]:
    """Environment for a forked worker: parent env plus an importable
    ``repro``.

    The service may itself run via a script that inserted ``src/`` on
    ``sys.path`` without exporting PYTHONPATH (the standalone bench
    scripts do exactly that); ``python -m repro`` in the child would
    then fail to import.  Prepending this package's parent directory
    keeps the child's interpreter pointed at the same code.
    """
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parents[2])
    parts = env.get("PYTHONPATH", "")
    if pkg_root not in parts.split(os.pathsep):
        env["PYTHONPATH"] = (
            pkg_root + os.pathsep + parts if parts else pkg_root
        )
    return env


class CampaignService:
    """One campaign-service directory: queue log, job journals, cache.

    Layout under ``root``::

        queue.jsonl                durable op log (see runtime.queue)
        service.telemetry          service lifecycle JSONL sidecar
        jobs/<id>.journal          per-job campaign journal
        jobs/<id>.journal.telemetry  per-job seed lifecycle sidecar
        jobs/<id>.result.json      atomic end-of-job summary
        cache/                     shared ResultCache (default location)

    ``submit``/``cancel``/``status`` are safe from any process; exactly
    one ``serve`` loop should run per directory at a time (a second one
    would double-launch workers — the queue log stays consistent, but
    the duplicated work defeats the point).
    """

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[ServiceConfig] = None,
        cache_dir: Union[str, Path, None] = None,
        use_cache: bool = True,
    ) -> None:
        self.root = Path(root)
        self.config = config or ServiceConfig()
        self.root.mkdir(parents=True, exist_ok=True)
        self.jobs_dir = self.root / "jobs"
        self.queue_path = self.root / QUEUE_FILE
        self.use_cache = use_cache
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None
            else self.root / "cache"
        )
        self.metrics = MetricsRegistry()
        for key in SERVICE_METRIC_KEYS:
            self.metrics.counter(f"service.{key}")
        self._telemetry: Optional[CampaignTelemetry] = None
        self._drain = False
        self._last_depth: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def journal_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.journal"

    def result_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.result.json"

    def _cache(self):
        if not self.use_cache:
            return None
        from repro.analysis.cache import ResultCache

        return ResultCache(self.cache_dir)

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(f"service.{name}").add(amount)

    def _emit(self, kind: str, **data: object) -> None:
        if self._telemetry is not None:
            self._telemetry.emit(kind, **data)

    def _emit_depth(self, queue: JobQueue) -> None:
        """Emit ``queue_depth`` whenever the depth profile changes."""
        lanes = queue.lanes()
        profile = {
            "running": len(queue.by_state(RUNNING)),
            **{f"queued_{p}": len(lanes[p]) for p in PRIORITIES},
        }
        if profile != self._last_depth:
            self._last_depth = dict(profile)
            self._emit(QUEUE_DEPTH, depth=queue.depth(), **profile)

    def metrics_snapshot(self) -> Dict[str, object]:
        """Every ``service.*`` metric; coverage-asserted so a new
        counter can never silently drop out of the table."""
        self.metrics.assert_covers(list(SERVICE_METRIC_KEYS), "service")
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Submission & admission control
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: object = None,
        seeds: Sequence[int] = (),
        experiment: str = "",
        priority: str = "normal",
        jobs: Optional[int] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 2,
        signature: Optional[Mapping[str, object]] = None,
    ) -> Admission:
        """Admit one job (idempotently) or reject it with a reason.

        Pass either a spec object or its ``spec_signature`` dict; seeds
        and experiment complete the campaign fingerprint, which *is*
        the job id.  The spec must be rebuildable
        (:func:`~repro.runtime.campaign.rebuild_from_signature`) or the
        worker could never reconstruct it — that is checked here, at
        admission, not at run time.
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        seeds = [int(seed) for seed in seeds]
        if not seeds:
            raise ValueError("need at least one seed")
        if signature is None:
            if spec is None:
                raise ValueError("need a spec or a spec signature")
            signature = spec_signature(spec)
        rebuilt = rebuild_from_signature(signature)  # raises if not
        job_id = campaign_fingerprint(rebuilt, seeds, experiment)

        queue = JobQueue.open(self.queue_path)
        existing = queue.jobs.get(job_id)
        if existing is not None and existing.state in (QUEUED, RUNNING):
            return Admission(
                accepted=True, job_id=job_id, state=existing.state,
                reason=f"already {existing.state} (idempotent submit)",
                fresh=False,
            )
        if existing is not None and existing.state == DONE:
            return Admission(
                accepted=True, job_id=job_id, state=DONE,
                reason=f"already complete; result at "
                       f"{self.result_path(job_id)}",
                fresh=False,
            )
        depth = queue.depth()
        if depth >= self.config.max_queued:
            return self._reject(
                job_id,
                f"queue full: {depth} jobs queued or running "
                f">= max_queued {self.config.max_queued}",
            )
        if self.config.disk_budget_bytes is not None:
            used = dir_bytes(self.root)
            if used > self.config.disk_budget_bytes:
                return self._reject(
                    job_id,
                    f"disk budget exhausted: {used} bytes under "
                    f"{self.root} > budget "
                    f"{self.config.disk_budget_bytes}",
                )
        queue.append_submit(
            JobRecord(
                job_id=job_id,
                experiment=experiment,
                spec=dict(signature),
                seeds=seeds,
                priority=priority,
                jobs=jobs,
                timeout_s=timeout_s,
                max_retries=max_retries,
                submitted_at=time.time(),
            ).as_json_dict()
        )
        self._count("jobs_submitted")
        if existing is not None:
            reason = f"re-armed after {existing.state}"
        else:
            reason = "accepted"
        return Admission(
            accepted=True, job_id=job_id, state=QUEUED,
            reason=reason, fresh=True,
        )

    def _reject(self, job_id: str, reason: str) -> Admission:
        """Refuse admission, counting and journaling the rejection.

        Rejected submissions never reach the queue log, so the serve
        loop cannot surface them — the submitter appends the telemetry
        event itself (the sidecar's locked appends make that safe from
        any process).
        """
        self._count("jobs_rejected")
        if self._telemetry is not None:
            self._telemetry.emit(JOB_REJECTED, job=job_id, reason=reason)
        else:
            with CampaignTelemetry(
                self.root / SERVICE_TELEMETRY, append=True
            ) as stream:
                stream.emit(JOB_REJECTED, job=job_id, reason=reason)
        return Admission(
            accepted=False, job_id=job_id, state="rejected",
            reason=reason, fresh=False,
        )

    def cancel(self, job_id: str, reason: str = "") -> bool:
        """Request cancellation; returns whether the job was known."""
        queue = JobQueue.open(self.queue_path)
        if job_id not in queue.jobs:
            return False
        queue.append_cancel(job_id, reason=reason)
        return True

    # ------------------------------------------------------------------
    # The serve loop
    # ------------------------------------------------------------------

    def serve(
        self,
        drain_and_exit: bool = False,
        max_ticks: Optional[int] = None,
        tick_hook=None,
    ) -> Dict[str, object]:
        """Drain the queue until stopped (or, with ``drain_and_exit``,
        until no job is queued or running).

        ``max_ticks`` bounds the loop for tests; ``tick_hook`` (tests
        only) runs at the top of every tick.  Returns the final
        ``service.*`` metrics snapshot merged with the queue counts.
        SIGTERM triggers a graceful drain; ``KeyboardInterrupt`` drains
        the workers the same way, then propagates so the CLI can exit
        130.
        """
        config = self.config
        queue = JobQueue.open(self.queue_path)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._telemetry = CampaignTelemetry(
            self.root / SERVICE_TELEMETRY, append=True
        )
        self._drain = False
        previous_sigterm = None

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            self._drain = True

        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # not the main thread (tests)
            previous_sigterm = None

        running: Dict[str, subprocess.Popen] = {}
        terminated: set = set()
        drain_announced = False
        drain_deadline: Optional[float] = None
        self._emit(
            SERVICE_STARTED,
            root=str(self.root),
            max_inflight=config.max_inflight,
            max_queued=config.max_queued,
            drain_and_exit=drain_and_exit,
        )
        self._reconcile(queue)
        ticks = 0
        try:
            while True:
                if tick_hook is not None:
                    tick_hook(self, queue)
                ticks += 1
                for op in queue.poll():
                    self._op_telemetry(queue, op)
                self._handle_cancel_requests(queue, running, terminated)
                self._reap(queue, running, terminated)

                if self._drain:
                    if not drain_announced:
                        drain_announced = True
                        drain_deadline = (
                            time.monotonic() + config.drain_grace_s
                        )
                        self._count("drains")
                        self._emit(
                            SERVICE_DRAIN,
                            running=sorted(running),
                            queued=len(queue.by_state(QUEUED)),
                        )
                        for process in running.values():
                            process.terminate()
                    if not running:
                        break
                    if (
                        drain_deadline is not None
                        and time.monotonic() > drain_deadline
                    ):  # pragma: no cover - pathological worker
                        for process in running.values():
                            process.kill()
                        drain_deadline = None
                else:
                    self._launch(queue, running)
                    if (
                        drain_and_exit
                        and not running
                        and not queue.by_state(QUEUED)
                        and not queue.by_state(RUNNING)
                    ):
                        break
                    if max_ticks is not None and ticks >= max_ticks:
                        break
                self._emit_depth(queue)
                time.sleep(config.poll_s)
        except KeyboardInterrupt:
            # Ctrl-C: drain the workers (they salvage + journal), then
            # let the interrupt propagate so the CLI exits 130.
            self._drain = True
            self._count("drains")
            self._emit(SERVICE_DRAIN, running=sorted(running), interrupted=True)
            self._shutdown(queue, running, terminated)
            raise
        finally:
            self._emit(
                SERVICE_STOPPED,
                drained=self._drain,
                ticks=ticks,
                counts=queue.counts(),
                metrics=self.metrics_snapshot(),
            )
            if self._telemetry is not None:
                self._telemetry.close()
                self._telemetry = None
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
        summary: Dict[str, object] = dict(self.metrics_snapshot())
        summary.update(queue.counts())
        summary["drained"] = self._drain
        return summary

    # ------------------------------------------------------------------
    # Serve-loop pieces
    # ------------------------------------------------------------------

    def _reconcile(self, queue: JobQueue) -> None:
        """A crashed service leaves ``running`` markers; requeue them.

        The job journals hold everything those workers finished, so the
        relaunch resumes rather than recomputes.
        """
        for job in queue.by_state(RUNNING):
            queue.append_state(
                job.job_id, QUEUED, attempts=job.attempts,
                reason="service restarted with job in flight",
            )
            self._count("jobs_requeued")
            self._emit(
                JOB_REQUEUED, job=job.job_id,
                reason="service restarted with job in flight",
                attempts=job.attempts,
            )
        queue.poll()

    def _op_telemetry(self, queue: JobQueue, op: Mapping[str, object]) -> None:
        """Surface ops appended by *other* processes (submits, cancels)."""
        if op.get("op") == "submit":
            job = op.get("job", {})
            self._emit(
                JOB_SUBMITTED,
                job=str(job.get("id")),  # type: ignore[union-attr]
                experiment=str(job.get("experiment")),  # type: ignore
                priority=str(job.get("priority")),  # type: ignore
                seeds=len(job.get("seeds", ())),  # type: ignore
                depth=queue.depth(),
            )

    def _handle_cancel_requests(
        self, queue: JobQueue, running: Dict[str, subprocess.Popen],
        terminated: set,
    ) -> None:
        for job in queue.by_state(RUNNING):
            if job.cancel_requested and job.job_id in running \
                    and job.job_id not in terminated:
                running[job.job_id].terminate()
                terminated.add(job.job_id)

    def _reap(
        self, queue: JobQueue, running: Dict[str, subprocess.Popen],
        terminated: set,
    ) -> None:
        for job_id, process in list(running.items()):
            code = process.poll()
            if code is None:
                continue
            del running[job_id]
            terminated.discard(job_id)
            job = queue.jobs.get(job_id)
            cancel_requested = job.cancel_requested if job else False
            attempts = job.attempts if job else 0
            if cancel_requested:
                queue.append_state(
                    job_id, CANCELLED, attempts=attempts,
                    reason="cancelled while running",
                )
                self._count("jobs_cancelled")
                self._emit(JOB_CANCELLED, job=job_id, exit_code=code)
            elif code == 0 and self._job_complete(queue, job_id):
                queue.append_state(job_id, DONE, attempts=attempts)
                self._count("jobs_completed")
                self._emit(JOB_FINISHED, job=job_id, attempts=attempts)
            elif code in (EXIT_DRAINED, EXIT_INTERRUPTED):
                queue.append_state(
                    job_id, QUEUED, attempts=attempts,
                    reason="drained mid-job; journal holds progress",
                )
                self._count("jobs_requeued")
                self._emit(
                    JOB_REQUEUED, job=job_id, exit_code=code,
                    reason="drained",
                )
            else:
                self._attempt_failed(
                    queue, job_id, attempts,
                    reason=f"worker exited {code}",
                )
            queue.poll()

    def _attempt_failed(
        self, queue: JobQueue, job_id: str, attempts: int, reason: str
    ) -> None:
        """Burn one attempt; trip the circuit breaker or back off."""
        attempts += 1
        self._count("job_attempts")
        if attempts >= self.config.max_job_attempts:
            queue.append_state(
                job_id, FAILED, attempts=attempts,
                reason=f"circuit breaker open after {attempts} "
                       f"attempts: {reason}",
            )
            self._count("jobs_failed")
            self._emit(
                JOB_FAILED, job=job_id, attempts=attempts, reason=reason,
            )
            return
        delay = job_backoff_delay(job_id, attempts, self.config)
        queue.append_state(
            job_id, QUEUED, attempts=attempts, reason=reason,
            not_before=time.time() + delay,
        )
        self._count("jobs_requeued")
        self._emit(
            JOB_REQUEUED, job=job_id, attempts=attempts, reason=reason,
            delay_s=round(delay, 6),
        )

    def _job_complete(self, queue: JobQueue, job_id: str) -> bool:
        """A worker exited 0 — trust but verify against the journal."""
        job = queue.jobs.get(job_id)
        if job is None:  # pragma: no cover - defensive
            return False
        try:
            snapshot = load_journal(self.journal_path(job_id))
        except JournalError:
            return False
        return all(seed in snapshot.completed for seed in job.seeds)

    def _launch(
        self, queue: JobQueue, running: Dict[str, subprocess.Popen]
    ) -> None:
        while len(running) < self.config.max_inflight:
            job = queue.next_ready()
            if job is None or job.job_id in running:
                return
            queue.append_state(
                job.job_id, RUNNING, attempts=job.attempts,
            )
            queue.poll()
            self._emit(
                JOB_STARTED, job=job.job_id, attempt=job.attempts + 1,
                priority=job.priority, depth=queue.depth(),
            )
            if self._complete_warm(queue, job):
                continue
            argv = [
                sys.executable, "-m", "repro", "serve", "worker",
                str(self.root), job.job_id,
            ]
            if not self.use_cache:
                argv.append("--no-cache")
            else:
                argv.extend(["--cache-dir", str(self.cache_dir)])
            running[job.job_id] = subprocess.Popen(argv, env=_worker_env())
            self._count("worker_forks")

    def _complete_warm(self, queue: JobQueue, job: JobRecord) -> bool:
        """Finish a job inline iff no seed needs a worker.

        Warm means: every seed is already in the job's journal or in
        the shared result cache.  The inline ``run_campaign`` then
        schedules nothing (cached seeds bypass the supervisor), so a
        warm job — e.g. an idempotent resubmission of a completed
        campaign into a fresh service — forks no worker at all.
        """
        try:
            spec = rebuild_from_signature(job.spec)
        except JournalError:  # pragma: no cover - submit() checked this
            return False
        journal = self.journal_path(job.job_id)
        completed: set = set()
        if journal.exists():
            try:
                completed = set(load_journal(journal).completed)
            except JournalError:
                completed = set()
        pending = [s for s in job.seeds if s not in completed]
        cache = self._cache()
        if pending:
            if cache is None:
                return False
            from repro.analysis.cache import is_cacheable

            if not is_cacheable(spec):
                return False
            if any(cache.get(spec, seed) is None for seed in pending):
                return False
        try:
            result = run_campaign(
                spec, job.seeds, jobs=1,
                journal_path=journal, resume=journal.exists(),
                experiment=job.experiment, cache=cache,
            )
        except (JournalError, OSError) as error:
            self._attempt_failed(
                queue, job.job_id, job.attempts,
                reason=f"warm completion failed: {error}",
            )
            return True
        write_job_result(self.result_path(job.job_id), job, result)
        queue.append_state(job.job_id, DONE, attempts=job.attempts)
        self._count("jobs_cached_warm")
        self._count("jobs_completed")
        self._emit(
            JOB_CACHED, job=job.job_id, cache_hits=result.cache_hits,
            resumed=result.resumed,
        )
        self._emit(JOB_FINISHED, job=job.job_id, warm=True)
        queue.poll()
        return True

    def _shutdown(
        self, queue: JobQueue, running: Dict[str, subprocess.Popen],
        terminated: set,
    ) -> None:
        """Drain helper for the KeyboardInterrupt path: SIGTERM every
        worker, wait out the grace period, reap, requeue."""
        for process in running.values():
            process.terminate()
        deadline = time.monotonic() + self.config.drain_grace_s
        while running and time.monotonic() < deadline:
            self._reap(queue, running, terminated)
            time.sleep(self.config.poll_s)
        for process in running.values():  # pragma: no cover - stuck
            process.kill()
        self._reap(queue, running, terminated)


# ----------------------------------------------------------------------
# Worker entry point (``repro serve worker``)
# ----------------------------------------------------------------------


def write_job_result(path: Path, job: JobRecord, result) -> Path:
    """Atomically record a finished job's summary beside its journal."""
    import json
    import tempfile

    aggregates = result.aggregates or {}
    payload = {
        "job": job.job_id,
        "experiment": job.experiment,
        "seeds": len(job.seeds),
        "completed": len(result.completed),
        "resumed": result.resumed,
        "cache_hits": result.cache_hits,
        "retries": result.retries,
        "respawns": result.respawns,
        "timeouts": result.timeouts,
        "degraded": result.degraded,
        "aggregates": {
            name: {
                "samples": agg.samples,
                "mean": agg.mean,
                "stdev": agg.stdev,
                "minimum": agg.minimum,
                "maximum": agg.maximum,
            }
            for name, agg in aggregates.items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{job.job_id[:8]}-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def run_worker(
    root: Union[str, Path],
    job_id: str,
    cache_dir: Union[str, Path, None] = None,
    use_cache: bool = True,
) -> int:
    """Run one job to completion (or drain) inside a worker process.

    Resumes from the job's journal when one exists, finishes in-flight
    seeds and exits :data:`EXIT_DRAINED` on SIGTERM, publishes the
    shared cache's hit/miss counters for cross-process accounting, and
    reports through exit codes: 0 complete, 1 incomplete (seed failures
    or I/O errors — the service burns an attempt), 2 unusable job or
    directory, 75 drained, 130 interrupted.
    """
    from repro.runtime.campaign import CampaignInterrupted
    from repro.runtime.queue import load_queue

    service = CampaignService(
        root, cache_dir=cache_dir, use_cache=use_cache
    )
    try:
        queue = load_queue(service.queue_path)
    except QueueError as error:
        print(f"repro serve worker: {error}", file=sys.stderr)
        return 2
    job = queue.jobs.get(job_id)
    if job is None:
        print(f"repro serve worker: unknown job {job_id}", file=sys.stderr)
        return 2
    try:
        spec = rebuild_from_signature(job.spec)
    except JournalError as error:
        print(f"repro serve worker: {error}", file=sys.stderr)
        return 2
    journal = service.journal_path(job_id)
    policy = SupervisorPolicy(
        timeout_s=job.timeout_s, max_retries=job.max_retries
    )
    cache = service._cache()
    try:
        result = run_campaign(
            spec, job.seeds, jobs=job.jobs, policy=policy,
            journal_path=journal, resume=journal.exists(),
            experiment=job.experiment, cache=cache,
            drain_on_sigterm=True,
        )
    except CampaignInterrupted:
        return EXIT_INTERRUPTED
    except JournalError as error:
        print(f"repro serve worker: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # e.g. disk-full on a journal append: the journal's clean
        # prefix is durable, so this attempt simply burns and the
        # retry resumes from it.
        print(f"repro serve worker: I/O failure: {error}", file=sys.stderr)
        return 1
    finally:
        if cache is not None:
            try:
                cache.publish_counters(f"worker-{job_id[:8]}-{os.getpid()}")
            except OSError:  # pragma: no cover - stats are best-effort
                pass
    if result.drained and not result.complete:
        return EXIT_DRAINED
    if result.complete:
        write_job_result(service.result_path(job_id), job, result)
        return 0
    return 1
