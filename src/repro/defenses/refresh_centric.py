"""Refresh-centric defenses: refresh victims before they flip (§4.3).

The paper's proposal and its baselines, spanning all three locations:

``TargetedRefreshDefense`` (software, **the paper's**) — precise ACT
interrupts identify the aggressor; the host OS issues the proposed
``refresh`` instruction to every potential victim row.  With DRAM
cooperation it upgrades to a single ``REF_NEIGHBORS`` command.

``AnvilDefense`` (software baseline [4]) — runs on *today's* hardware:
samples core-side misses (PEBS-style), and "refreshes" victims through
the only path available — cache flush + load — which is slow and, per
§4.3, unreliable (a load absorbed by an open row buffer performs no
ACT, hence no refresh).  Its §1 flaw: DMA traffic is invisible to core
counters, so DMA hammering sails through (E7).

``ParaDefense`` (in-MC baseline [32]) — probabilistic adjacent-row
refresh on every ACT.  Stateless, but its refresh radius is fixed in
hardware: modules with larger blast radii than it was built for leak
(E5), and the extra ACTs cost bandwidth in proportion to ``p``.

``GrapheneDefense`` (in-MC baseline [44]) — Misra-Gries heavy-hitter
counters; exact protection guarantee, but table size scales as
``window_ACTs / threshold ∝ 1/MAC`` — the §3 SRAM-growth liability (E5).

``TwiceDefense`` (in-MC baseline [37]) — per-row time-window counters
pruned periodically; same action as Graphene with a bigger table.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense, DefenseCost
from repro.dram.geometry import DdrAddress
from repro.mc.counters import ActInterrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

RowId = Tuple[int, int, int, int]

_COUNTER_BITS = 16
_TAG_BITS = 20


def _safe_threshold(system: "System", margin: float) -> int:
    """Per-aggressor ACT budget such that victims stay under MAC even
    with aggressors on both sides at every distance."""
    profile = system.profile
    amplification = 2 * sum(
        profile.weight(d) for d in range(1, profile.blast_radius + 1)
    )
    return max(1, int(profile.mac * margin / amplification))


def _neighbor_addresses(
    system: "System", address: DdrAddress, radius: int
) -> List[DdrAddress]:
    """Logically adjacent rows — what MC/software-level defenses can
    name.  (Internal remaps may divert these; that blind spot is real
    and measured in E11.)"""
    return [
        DdrAddress(address.channel, address.rank, address.bank, row, 0)
        for row in system.geometry.neighbors_within(address.row, radius)
    ]


class TargetedRefreshDefense(Defense):
    """The paper's refresh-centric proposal (§4.2 + §4.3 combined).

    On each precise ACT interrupt, refresh every potential victim of the
    reported aggressor row with the ``refresh`` instruction — or, when
    the platform has DRAM cooperation, one ``REF_NEIGHBORS`` command
    (which also wins on internal adjacency, since DRAM resolves it).
    """

    name = "targeted-refresh"
    table1_row = ("CPU refresh instruction", "software victim refresh")
    mitigation_counters = ("victim_refreshes", "ref_neighbors_issued")
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,
        scales_with_density=True,  # radius is a software parameter
    )
    requires = (Primitive.PRECISE_ACT_INTERRUPT, Primitive.REFRESH_INSTRUCTION)

    def __init__(
        self,
        interrupt_fraction: float = 0.125,
        jitter_fraction: float = 0.25,
        radius: Optional[int] = None,
        prefer_ref_neighbors: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < interrupt_fraction < 1.0:
            raise ValueError("interrupt_fraction must be in (0, 1)")
        self.interrupt_fraction = interrupt_fraction
        self.jitter_fraction = jitter_fraction
        self.radius = radius
        self.prefer_ref_neighbors = prefer_ref_neighbors
        self._in_handler = False
        self._use_ref_neighbors = False

    def _wire(self, system: "System") -> None:
        threshold = max(2, int(system.profile.mac * self.interrupt_fraction))
        jitter = int(threshold * self.jitter_fraction)
        system.controller.configure_counters(
            threshold, precise=True, reset_jitter=jitter
        )
        system.controller.subscribe_interrupts(self._on_interrupt)
        if self.radius is None:
            self.radius = system.profile.blast_radius
        self._use_ref_neighbors = self.prefer_ref_neighbors and system.primitives.has(
            Primitive.REF_NEIGHBORS_COMMAND
        )

    def _on_interrupt(self, interrupt: ActInterrupt) -> None:
        assert self.system is not None
        if self._in_handler:
            self.bump("masked_interrupts")
            return
        if interrupt.physical_line is None:
            self.bump("useless_imprecise_interrupts")
            return
        self.bump("interrupts")
        self._in_handler = True
        try:
            self._refresh_victims(interrupt.physical_line, interrupt.time_ns)
        finally:
            self._in_handler = False

    def _refresh_victims(self, physical_line: int, now: int) -> None:
        system = self.system
        assert system is not None and self.radius is not None
        if self._use_ref_neighbors:
            system.isa.ref_neighbors(
                system.host_context, physical_line, self.radius, now
            )
            self.bump("ref_neighbors_issued")
            return
        aggressor = system.mapper.line_to_ddr(physical_line)
        for victim in _neighbor_addresses(system, aggressor, self.radius):
            line = system.some_line_in_row(victim.row_key())
            if line is None:
                self.bump("unmapped_victims_skipped")
                continue
            system.isa.refresh_physical(system.host_context, line, now)
            self.bump("victim_refreshes")


class AnvilDefense(Defense):
    """ANVIL-style software defense on *today's* hardware [4].

    Watches core-originated misses only (what PEBS sees), counts per
    row, and on suspicion "refreshes" victims the only way current
    machines allow: flush + load of a line in each victim row.  Both of
    the paper's criticisms emerge mechanically:

    * §1 — DMA-induced ACTs never reach its counters (E7);
    * §4.3 — its refresh loads only ACT (hence refresh) when the target
      row is *not* already in the row buffer, so some "refreshes" are
      silently ineffective.
    """

    name = "anvil"
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=False,  # the §1 blind spot
        scales_with_density=True,
    )
    requires: Tuple[Primitive, ...] = ()  # deployable today
    #: scalar-only ACT observer that re-enters the MC (flush+load
    #: refreshes) — must see strictly ordered per-ACT events
    supports_bulk_acts = False

    def __init__(self, threshold_margin: float = 0.45, radius: Optional[int] = None):
        super().__init__()
        self.threshold_margin = threshold_margin
        self.radius = radius
        self._counts: Dict[RowId, int] = {}
        self._window_end = 0
        self._threshold = 0
        self._in_handler = False

    def _wire(self, system: "System") -> None:
        self._threshold = _safe_threshold(system, self.threshold_margin)
        self._window_end = system.timings.tREFW
        if self.radius is None:
            self.radius = system.profile.blast_radius
        system.controller.add_act_observer(self._on_act)

    def _on_act(
        self, address: DdrAddress, now: int, domain: Optional[int], is_dma: bool
    ) -> None:
        if is_dma:
            return  # invisible to core performance counters
        if self._in_handler:
            return  # our own refresh loads
        if now >= self._window_end:
            self._counts.clear()
            refw = self.system.timings.tREFW
            while self._window_end <= now:
                self._window_end += refw
        row = address.row_key()
        count = self._counts.get(row, 0) + 1
        if count >= self._threshold:
            self._counts[row] = 0
            self._in_handler = True
            try:
                self._refresh_via_loads(address, now)
            finally:
                self._in_handler = False
        else:
            self._counts[row] = count

    def _refresh_via_loads(self, aggressor: DdrAddress, now: int) -> None:
        """The convoluted path of §4.3: flush + load one line per victim
        row and hope the load misses the row buffer into an ACT."""
        from repro.mc.controller import MemoryRequest

        system = self.system
        assert system is not None and self.radius is not None
        self.bump("suspicions")
        when = now
        for victim in _neighbor_addresses(system, aggressor, self.radius):
            line = system.some_line_in_row(victim.row_key())
            if line is None:
                self.bump("unmapped_victims_skipped")
                continue
            system.cache.flush(line)
            completed = system.controller.submit(
                MemoryRequest(time_ns=when, physical_line=line, is_write=False)
            )
            when = completed.ready_at_ns
            if completed.caused_act:
                self.bump("effective_refreshes")
            else:
                self.bump("ineffective_refreshes")  # row buffer absorbed it


class ParaDefense(Defense):
    """PARA [32]: on every ACT, with probability ``p`` also activate one
    row within ``refresh_radius`` of the target (refreshing it).
    Stateless in-MC hardware; the radius is frozen at design time."""

    name = "para"
    mitigation_counters = ("neighbor_refreshes",)
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="mc",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,
        scales_with_density=False,  # frozen radius, probability retuning
    )
    requires: Tuple[Primitive, ...] = ()
    #: scalar-only ACT observer that re-enters the device (neighbor
    #: refresh ACTs) — columnar batches take the ordered fallback
    supports_bulk_acts = False

    def __init__(self, probability: float = 0.01, refresh_radius: int = 1) -> None:
        super().__init__()
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if refresh_radius < 1:
            raise ValueError("refresh_radius must be >= 1")
        self.probability = probability
        self.refresh_radius = refresh_radius
        self._rng = random.Random(0xBA5E)
        self._refreshing = False

    def _wire(self, system: "System") -> None:
        self._rng = random.Random(system.config.seed ^ 0xBA5E)
        system.controller.add_act_observer(self._on_act)

    def _on_act(
        self, address: DdrAddress, now: int, domain: Optional[int], is_dma: bool
    ) -> None:
        if self._refreshing:
            return  # don't recurse on our own refresh ACTs
        if self._rng.random() >= self.probability:
            return
        neighbors = _neighbor_addresses(self.system, address, self.refresh_radius)
        if not neighbors:
            return
        victim = self._rng.choice(neighbors)
        self._refreshing = True
        try:
            self.system.device.activate(
                victim, now, domain=None, precharge_after=True,
                refresh_only=True,
            )
            self.bump("neighbor_refreshes")
        finally:
            self._refreshing = False


class GrapheneDefense(Defense):
    """Graphene [44]: Misra-Gries heavy-hitter tracking per bank.

    Any row truly activated ≥ (window_ACTs / table_size) + threshold is
    guaranteed to be in the table with estimated count ≥ threshold, at
    which point its neighbours are refreshed and its estimate resets.
    The table is sized for that guarantee — and therefore grows as the
    safe threshold shrinks with MAC (E5's cost curve).
    """

    name = "graphene"
    mitigation_counters = ("neighbor_refreshes",)
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="mc",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,
        scales_with_density=False,  # table ∝ 1/MAC
    )
    requires: Tuple[Primitive, ...] = ()
    #: scalar-only ACT observer that re-enters the device (neighbor
    #: refresh ACTs) — columnar batches take the ordered fallback
    supports_bulk_acts = False

    def __init__(
        self,
        threshold_margin: float = 0.45,
        table_entries: Optional[int] = None,
        radius: Optional[int] = None,
    ) -> None:
        """``table_entries`` caps the per-bank table (to model a module
        denser than the hardware was built for — E5); default sizes for
        the guarantee."""
        super().__init__()
        self.threshold_margin = threshold_margin
        self.table_entries = table_entries
        self.radius = radius
        self._tables: Dict[Tuple[int, int, int], Dict[int, int]] = {}
        self._threshold = 0
        self._entries = 0
        self._window_end = 0
        self._refreshing = False

    def required_entries(self, system: "System") -> int:
        """Misra-Gries sizing for the protection guarantee: catch any row
        exceeding ``threshold`` among ``window_acts`` ACTs → need
        ``window_acts / threshold`` counters per bank."""
        threshold = _safe_threshold(system, self.threshold_margin)
        window_acts = system.timings.tREFW // system.timings.tRC
        return max(1, window_acts // max(1, threshold))

    def _wire(self, system: "System") -> None:
        self._threshold = _safe_threshold(system, self.threshold_margin)
        self._entries = (
            self.table_entries
            if self.table_entries is not None
            else self.required_entries(system)
        )
        if self.radius is None:
            self.radius = system.profile.blast_radius
        self._window_end = system.timings.tREFW
        system.controller.add_act_observer(self._on_act)

    def cost(self) -> DefenseCost:
        banks = self.system.geometry.banks_total if self.system else 1
        return DefenseCost(
            sram_bits=self._entries * (_COUNTER_BITS + _TAG_BITS) * banks
        )

    def _on_act(
        self, address: DdrAddress, now: int, domain: Optional[int], is_dma: bool
    ) -> None:
        if self._refreshing:
            return
        if now >= self._window_end:
            self._tables.clear()
            refw = self.system.timings.tREFW
            while self._window_end <= now:
                self._window_end += refw
        table = self._tables.setdefault(address.bank_key(), {})
        row = address.row
        if row in table:
            table[row] += 1
        elif len(table) < self._entries:
            table[row] = 1
        else:
            # Misra-Gries decrement-all step
            for key in list(table):
                table[key] -= 1
                if table[key] <= 0:
                    del table[key]
            self.bump("mg_decrements")
            return
        if table[row] >= self._threshold:
            table[row] = 0
            self._refresh_neighbors(address, now)

    def _refresh_neighbors(self, aggressor: DdrAddress, now: int) -> None:
        self._refreshing = True
        try:
            for victim in _neighbor_addresses(self.system, aggressor, self.radius):
                self.system.device.activate(
                    victim, now, domain=None, precharge_after=True,
                    refresh_only=True,
                )
                self.bump("neighbor_refreshes")
        finally:
            self._refreshing = False


class TwiceDefense(GrapheneDefense):
    """TWiCe [37]: per-row time-window counters with periodic pruning.

    Behaviourally close to Graphene but tracks *every* recently active
    row until pruning, so the table (CAM) is larger; ``cost()`` reports
    the peak occupancy actually reached — the quantity TWiCe's authors
    and §3 worry about as density rises.
    """

    name = "twice"

    def __init__(self, threshold_margin: float = 0.45, radius: Optional[int] = None):
        super().__init__(threshold_margin=threshold_margin, radius=radius)
        self._peak_entries = 0
        self._prune_at = 0
        self._prune_interval = 0

    def _wire(self, system: "System") -> None:
        self._threshold = _safe_threshold(system, self.threshold_margin)
        self._entries = 1 << 30  # unbounded table; cost() reports the peak
        if self.radius is None:
            self.radius = system.profile.blast_radius
        self._window_end = system.timings.tREFW
        # prune at every tREFI, as TWiCe does on refresh commands
        self._prune_interval = system.timings.tREFI
        self._prune_at = self._prune_interval
        system.controller.add_act_observer(self._on_act)

    def cost(self) -> DefenseCost:
        banks = self.system.geometry.banks_total if self.system else 1
        return DefenseCost(
            sram_bits=max(1, self._peak_entries) * (_COUNTER_BITS + _TAG_BITS) * banks
        )

    def _on_act(
        self, address: DdrAddress, now: int, domain: Optional[int], is_dma: bool
    ) -> None:
        if now >= self._prune_at:
            self._prune(now)
        super()._on_act(address, now, domain, is_dma)
        occupancy = max(
            (len(table) for table in self._tables.values()), default=0
        )
        self._peak_entries = max(self._peak_entries, occupancy)

    def _prune(self, now: int) -> None:
        """Drop rows whose activation rate cannot reach the threshold
        within the window (TWiCe's pruning rule, simplified)."""
        refs_per_window = max(1, self.system.timings.refs_per_window)
        life_minimum = max(1, self._threshold // refs_per_window)
        for table in self._tables.values():
            for row in [r for r, c in table.items() if c < life_minimum]:
                del table[row]
        while self._prune_at <= now:
            self._prune_at += self._prune_interval
        self.bump("prunes")
