"""Scoped (asset-aware) refresh defense, SoftTRR-style.

The paper's related work includes SoftTRR [62]: instead of defending all
of memory, defend the pages whose corruption is catastrophic (page
tables, crypto keys, enclave metadata) — a much smaller refresh budget
for the protection that matters most.  With the precise ACT interrupt
this becomes a few lines of policy: on every reported aggressor, refresh
only those neighbouring rows that hold *protected* data.

This is also the natural defense-in-depth partner for subarray
isolation: isolation removes cross-domain victims, and a scoped guard
over the host's own critical pages covers the §2.2 intra-domain
residual where it actually matters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense
from repro.mc.counters import ActInterrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System

RowKey = Tuple[int, int, int, int]


class CriticalRowGuardDefense(Defense):
    """Refresh-centric protection for a designated set of frames only."""

    name = "critical-row-guard"
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="software",
        stops_cross_domain=False,  # only for the protected asset set
        stops_intra_domain=False,
        covers_dma=True,
        scales_with_density=True,
    )
    requires = (Primitive.PRECISE_ACT_INTERRUPT, Primitive.REFRESH_INSTRUCTION)

    def __init__(
        self,
        interrupt_fraction: float = 0.125,
        jitter_fraction: float = 0.25,
        radius: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < interrupt_fraction < 1.0:
            raise ValueError("interrupt_fraction must be in (0, 1)")
        self.interrupt_fraction = interrupt_fraction
        self.jitter_fraction = jitter_fraction
        self.radius = radius
        self._protected_rows: Set[RowKey] = set()
        self._in_handler = False

    def _wire(self, system: "System") -> None:
        threshold = max(2, int(system.profile.mac * self.interrupt_fraction))
        jitter = int(threshold * self.jitter_fraction)
        system.controller.configure_counters(
            threshold, precise=True, reset_jitter=jitter
        )
        system.controller.subscribe_interrupts(self._on_interrupt)
        if self.radius is None:
            self.radius = system.profile.blast_radius

    # ------------------------------------------------------------------
    # Asset registration (host-OS policy)
    # ------------------------------------------------------------------

    def protect_frames(self, frames) -> int:
        """Mark frames as critical; their rows get guarded.  Returns the
        number of protected rows."""
        system = self.system
        assert system is not None, "attach the defense first"
        for frame in frames:
            self._protected_rows.update(system.mapper.rows_of_frame(frame))
        self.bump("protected_rows", len(self._protected_rows))
        return len(self._protected_rows)

    def protect_domain(self, handle: "DomainHandle") -> int:
        """Protect every frame of a tenant (e.g. the hypervisor's own
        page-table pages modelled as one domain)."""
        return self.protect_frames(handle.frames)

    @property
    def protected_rows(self) -> int:
        return len(self._protected_rows)

    # ------------------------------------------------------------------
    # Interrupt path
    # ------------------------------------------------------------------

    def _on_interrupt(self, interrupt: ActInterrupt) -> None:
        system = self.system
        assert system is not None
        if self._in_handler:
            self.bump("masked_interrupts")
            return
        if interrupt.physical_line is None:
            self.bump("useless_imprecise_interrupts")
            return
        aggressor_row = system.row_of_physical_line(interrupt.physical_line)
        victims = [
            row
            for row in system.logical_neighbor_rows(aggressor_row, self.radius)
            if row in self._protected_rows
        ]
        if not victims:
            self.bump("interrupts_ignored")  # not our asset: zero cost
            return
        self.bump("interrupts_acted_on")
        self._in_handler = True
        try:
            for row in victims:
                line = system.some_line_in_row(row)
                if line is None:
                    continue
                system.isa.refresh_physical(system.host_context, line,
                                            interrupt.time_ns)
                self.bump("protected_refreshes")
        finally:
            self._in_handler = False
