"""Vendor-style blackbox in-DRAM mitigation: Target Row Refresh (TRR).

§3 summarizes the reverse-engineering results of TRRespass [15] and
SMASH [14]: deployed TRR tracks a small number ``n`` of aggressor rows
per bank (``n`` varies by module and vendor) and refreshes their
neighbours during REF — and is *bypassed* by hammering more than ``n``
aggressors, because no row's activity estimate ever rises above the
noise once the tracker churns.

``VendorTrr`` models that shape with a frequency-estimating tracker
(Misra-Gries style, which is what counter-based TRR implementations
approximate): ``n`` (row, count) entries per bank; an ACT of an
untracked row when the table is full decrements everyone instead of
inserting.  During each REF the module refreshes the neighbours of rows
whose count crossed ``trigger`` and retires them.

* ≤ n aggressors: every aggressor's count climbs quickly, victims are
  refreshed well inside the window — no flips.
* > n aggressors (TRRespass): round-robin hammering makes the table
  churn; counts never reach ``trigger``; **no targeted refreshes happen
  at all** and victims accumulate pressure for the whole window — the
  protection cliff experiment E6 sweeps across.

Like the real thing, the model is a *blackbox*: no knobs, no telemetry,
no guarantees exposed to the platform; the harness learns what it does
only by hammering and observing flips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense, DefenseCost
from repro.dram.geometry import DdrAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

BankKey = Tuple[int, int, int]

#: bits per tracker entry: row address (~17b) + saturating counter
_BITS_PER_ENTRY = 32


class VendorTrr(Defense):
    """In-DRAM TRR: per-bank Misra-Gries tracker of ``n_trackers`` rows.

    ``refresh_radius`` is the neighbourhood the module repairs around a
    triggered aggressor — fixed at module design time, a scaling
    liability once blast radii grow past it (§3, experiment E5).
    """

    name = "vendor-trr"
    mitigation_counters = ("trr_targets_refreshed",)
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="dram",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,  # in DRAM, it sees every ACT...
        scales_with_density=False,  # ...but its tracker does not scale
    )
    requires: Tuple[Primitive, ...] = ()  # needs nothing from the CPU

    def __init__(
        self,
        n_trackers: int = 4,
        refresh_radius: int = 2,
        trigger: int = 8,
    ) -> None:
        super().__init__()
        if n_trackers < 1:
            raise ValueError("n_trackers must be >= 1")
        if refresh_radius < 1:
            raise ValueError("refresh_radius must be >= 1")
        if trigger < 1:
            raise ValueError("trigger must be >= 1")
        self.n_trackers = n_trackers
        self.refresh_radius = refresh_radius
        self.trigger = trigger
        # per bank: row -> (count, exemplar address)
        self._tables: Dict[BankKey, Dict[int, List]] = {}

    # ------------------------------------------------------------------
    # Defense lifecycle
    # ------------------------------------------------------------------

    def _wire(self, system: "System") -> None:
        if system.device.mitigation is not None:
            raise RuntimeError("the DRAM module already has a mitigation")
        system.device.mitigation = self

    def cost(self) -> DefenseCost:
        banks = (
            self.system.geometry.banks_total if self.system is not None else 1
        )
        return DefenseCost(sram_bits=self.n_trackers * _BITS_PER_ENTRY * banks)

    # ------------------------------------------------------------------
    # InDramMitigation protocol (driven by the DRAM device)
    # ------------------------------------------------------------------

    def on_activate(self, address: DdrAddress, time_ns: int) -> None:
        table = self._tables.setdefault(address.bank_key(), {})
        entry = table.get(address.row)
        if entry is not None:
            entry[0] += 1
            return
        if len(table) < self.n_trackers:
            table[address.row] = [1, address]
            return
        # Misra-Gries decrement: an untracked row on a full table costs
        # every tracked row one count — the churn that >n-sided attacks
        # exploit to keep all estimates below the trigger.
        for row in list(table):
            table[row][0] -= 1
            if table[row][0] <= 0:
                del table[row]
        self.bump("tracker_churn")

    def targets_to_refresh(self, time_ns: int) -> List[Tuple[DdrAddress, int]]:
        targets: List[Tuple[DdrAddress, int]] = []
        for table in self._tables.values():
            hot = [row for row, entry in table.items() if entry[0] >= self.trigger]
            for row in hot:
                targets.append((table[row][1], self.refresh_radius))
                del table[row]
        if targets:
            self.bump("trr_targets_refreshed", len(targets))
        return targets


class SamplingTrr(Defense):
    """The other reverse-engineered TRR flavour: a *sampler*, not a
    counter.  Each ACT is captured with probability ``sample_rate`` into
    a per-bank table of at most ``n_trackers`` entries; every REF burst
    refreshes the neighbours of all captured rows and clears the table.

    Its weakness is dilution rather than churn: with many aggressors (or
    heavy benign traffic) the chance that a *specific* aggressor is
    sampled between two REFs shrinks, and its victims go unrefreshed for
    long stretches — the "probabilistic" bypass surface TRRespass also
    documents across vendors.
    """

    name = "sampling-trr"
    mitigation_counters = ("trr_targets_refreshed",)
    traits = VendorTrr.traits
    requires: Tuple[Primitive, ...] = ()

    def __init__(
        self,
        n_trackers: int = 4,
        refresh_radius: int = 2,
        sample_rate: float = 0.1,
        seed: int = 0x7A11,
    ) -> None:
        super().__init__()
        if n_trackers < 1:
            raise ValueError("n_trackers must be >= 1")
        if refresh_radius < 1:
            raise ValueError("refresh_radius must be >= 1")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.n_trackers = n_trackers
        self.refresh_radius = refresh_radius
        self.sample_rate = sample_rate
        self._seed = seed
        self._rng = None
        self._tables: Dict[BankKey, Dict[int, DdrAddress]] = {}

    def _wire(self, system: "System") -> None:
        import random

        if system.device.mitigation is not None:
            raise RuntimeError("the DRAM module already has a mitigation")
        self._rng = random.Random(system.config.seed ^ self._seed)
        system.device.mitigation = self

    def cost(self) -> DefenseCost:
        banks = (
            self.system.geometry.banks_total if self.system is not None else 1
        )
        return DefenseCost(sram_bits=self.n_trackers * _BITS_PER_ENTRY * banks)

    # -- InDramMitigation protocol --------------------------------------

    def on_activate(self, address: DdrAddress, time_ns: int) -> None:
        assert self._rng is not None, "not attached"
        if self._rng.random() >= self.sample_rate:
            return
        table = self._tables.setdefault(address.bank_key(), {})
        if address.row in table or len(table) < self.n_trackers:
            table[address.row] = address
            self.bump("samples_captured")
        else:
            self.bump("samples_dropped_table_full")

    def targets_to_refresh(self, time_ns: int) -> List[Tuple[DdrAddress, int]]:
        targets = [
            (address, self.refresh_radius)
            for table in self._tables.values()
            for address in table.values()
        ]
        for table in self._tables.values():
            table.clear()
        if targets:
            self.bump("trr_targets_refreshed", len(targets))
        return targets
