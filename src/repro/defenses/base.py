"""Common lifecycle for every Rowhammer defense in the harness.

One abstraction covers all three locations the paper distinguishes:
in-DRAM (vendor TRR), in-MC (PARA/BlockHammer/Graphene/TWiCe), and host
software (the paper's proposals, ANVIL, allocator policies).  Uniformity
is what lets a single experiment sweep "defense × attack × DRAM
generation" and print one table.

A defense declares:

* ``traits``       — its mitigation class and coverage claims (taxonomy);
* ``requires``     — the MC primitives it needs (§4); attach() *fails*
  without them, which is how experiments demonstrate that the paper's
  software defenses are impossible on today's hardware;
* ``cost()``       — its hardware budget (SRAM/CAM bits), the quantity
  §3 argues explodes as DRAM density grows.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.core.primitives import Primitive, PrimitiveSet
from repro.core.taxonomy import DefenseTraits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import System


@dataclass(frozen=True)
class DefenseCost:
    """Static hardware/software budget of one defense instance.

    ``sram_bits`` counts dedicated tracker state (SRAM or CAM —
    "relatively-expensive memory", §1).  ``reserved_capacity_fraction``
    is DRAM capacity sacrificed (guard rows, reserved subarrays).
    ``reserved_cache_ways`` is LLC associativity claimed by locking.
    """

    sram_bits: int = 0
    reserved_capacity_fraction: float = 0.0
    reserved_cache_ways: int = 0


class Defense(abc.ABC):
    """Base class; subclasses implement ``_wire`` and optional hooks."""

    #: short name used in experiment tables
    name: str = "defense"
    #: taxonomy classification (set by every subclass)
    traits: DefenseTraits
    #: primitives that must be present to attach
    requires: Tuple[Primitive, ...] = ()
    #: Optional Table-1 pairing ``(mc-primitive label, defense label)``
    #: — declaring it opts the defense into experiment E1's executable
    #: Table-1 matrix (undefended baseline flips, attach behaviour on
    #: bare legacy hardware, zero flips once hosted).  ``None`` keeps
    #: the defense out of E1.
    table1_row: Optional[Tuple[str, str]] = None
    #: Names of counters (keys into ``self.counters``) that count
    #: *triggered mitigations* — neighbor refreshes issued, rows
    #: recovered, TRR targets refreshed.  Wrappers that score trust
    #: domains by mitigation pressure (BreakHammer) read these to
    #: attribute blame generically, whatever the base tracker is.
    mitigation_counters: Tuple[str, ...] = ()
    #: Whether the defense's ACT-path hooks are safe under the MC's bulk
    #: (columnar) engine.  True for defenses whose hooks are inline-safe
    #: there — act gates, interrupt subscriptions, in-DRAM mitigations,
    #: allocator policies — or that install a bulk observer twin.  Set
    #: False when ``_wire`` installs a *scalar-only* ACT observer whose
    #: semantics depend on strict per-ACT interleaving with the rest of
    #: the controller (e.g. observers that re-enter the MC to refresh
    #: rows); the columnar path then services batches through its
    #: ordered scalar fallback, counted in ``mc.columnar_fallbacks``.
    supports_bulk_acts: bool = True

    def __init__(self) -> None:
        self.system: "System | None" = None
        self.attached = False
        #: free-form counters surfaced in experiment tables
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, system: "System") -> None:
        """Wire the defense into a built system.

        Raises :class:`~repro.core.primitives.MissingPrimitiveError` when
        the platform lacks a required primitive.
        """
        if self.attached:
            raise RuntimeError(f"{self.name} is already attached")
        system.primitives.require(*self.requires)
        self.system = system
        self._wire(system)
        self.attached = True
        obs = getattr(system, "obs", None)
        if obs is not None:
            # live reference: counters bumped after attach still appear
            # in registry snapshots under ``defense.<name>.*``
            obs.metrics.register_group(f"defense.{self.name}", self.counters)
        registered = getattr(system, "defenses", None)
        if registered is not None:
            # the system tracks attached defenses so the invariant suite
            # can cross-check their live counters against the registry
            registered.append(self)

    @abc.abstractmethod
    def _wire(self, system: "System") -> None:
        """Subclass hook: subscribe to interrupts, install gates, set
        allocator policy expectations, etc."""

    def cost(self) -> DefenseCost:
        """Hardware budget; default is free (pure-policy defenses)."""
        return DefenseCost()

    # ------------------------------------------------------------------
    # Bulk ACT API (columnar fast path)
    # ------------------------------------------------------------------

    def on_activate_bulk(
        self,
        addresses: Sequence[object],
        times: Sequence[int],
        domains: Optional[Sequence[Optional[int]]] = None,
        dmas: Optional[Sequence[bool]] = None,
    ) -> None:
        """Observe a whole vector of ACTs.

        The default is a *segmented replay*: if the subclass defines a
        scalar per-ACT hook ``_on_act(address, time_ns, domain,
        is_dma)`` it is called once per element, in order — correct for
        any observer, with none of the vector speedup.  Defenses with a
        vectorizable tracker override this (and pass it as the ``bulk=``
        twin when subscribing via
        :meth:`~repro.mc.controller.MemoryController.add_act_observer`);
        defenses whose scalar hook must interleave strictly with the
        controller's own per-ACT machinery set
        ``supports_bulk_acts = False`` instead and never advertise a
        bulk twin.
        """
        hook = getattr(self, "_on_act", None)
        if hook is None:
            return
        for index in range(len(times)):
            hook(
                addresses[index],
                times[index],
                None if domains is None else domains[index],
                False if dmas is None else dmas[index],
            )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def describe(self) -> Dict[str, object]:
        """One table row of static facts about this defense."""
        return {
            "name": self.name,
            "class": self.traits.mitigation_class.value,
            "location": self.traits.location,
            "requires": tuple(p.value for p in self.requires),
            "covers_dma": self.traits.covers_dma,
            "stops_intra_domain": self.traits.stops_intra_domain,
        }
