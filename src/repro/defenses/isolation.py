"""Isolation-centric defenses: remove cross-domain proximity (§4.1).

``SubarrayIsolationDefense`` — the paper's proposal: subarray-isolated
interleaving in the MC plus subarray-aware allocation in the host OS.
Interleaving (and its bank-level parallelism) stays on; domains can no
longer be DRAM neighbours.  Optionally audits DRAM-internal row remaps
(disclosed by the vendor or inferred by hammer templating, §4.1) and
quarantines frames whose rows escape their subarray.

``BankPartitionDefense`` — PALLOC-style baseline [61]: disjoint banks per
domain.  Requires interleaving disabled, with the >18% performance cost
§4.1 cites; the allocator enforces feasibility.

``GuardRowsDefense`` — ZebRAM-style baseline [34]: blast-radius guard
rows between domains.  Same no-interleaving constraint, plus capacity
sacrificed to guards.

All three share the taxonomy caveat of §2.2: intra-domain disturbance is
*not* prevented (``stops_intra_domain=False``), which E4 verifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense, DefenseCost
from repro.hostos.allocator import AllocationPolicy, PageAllocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System


class _PolicyDefense(Defense):
    """Shared base: a defense that is an allocator policy.  Attachment
    verifies the system was *built* with the right policy (allocation
    decisions precede any attach-time fixup)."""

    policy: AllocationPolicy

    def _wire(self, system: "System") -> None:
        if system.allocator.policy is not self.policy:
            raise RuntimeError(
                f"{self.name} requires the system to be built with "
                f"allocation_policy={self.policy.value!r} "
                f"(got {system.allocator.policy.value!r})"
            )


class SubarrayIsolationDefense(_PolicyDefense):
    """The paper's isolation proposal (§4.1, Fig. 2)."""

    name = "subarray-isolation"
    table1_row = ("subarray-isolated interleaving", "subarray-aware allocation")
    policy = AllocationPolicy.SUBARRAY_AWARE
    traits = DefenseTraits(
        mitigation_class=MitigationClass.ISOLATION,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=False,  # the §2.2 caveat
        covers_dma=True,  # placement is origin-agnostic
        scales_with_density=True,
    )
    requires = (Primitive.SUBARRAY_ISOLATED_INTERLEAVING,)

    def audit_internal_remaps(self, remapped_logical_rows: Iterable[Tuple[int, int]]) -> int:
        """§4.1: DRAM may remap a row to a different internal subarray,
        breaking isolation.  Given (bank_index, logical_row) pairs known
        to be remapped — from vendor disclosure or hammer-templating
        inference (:mod:`repro.attacks.adjacency`) — quarantine every
        frame with data in an escaping row.  Returns frames quarantined.
        """
        system = self.system
        assert system is not None
        geometry = system.geometry
        remapper = system.device.remapper
        quarantined = 0
        for bank_index, logical_row in remapped_logical_rows:
            internal = remapper.to_internal(bank_index, logical_row)
            if geometry.same_subarray(logical_row, internal):
                continue  # harmless remap, stays inside the subarray
            channel, rank, bank = geometry.bank_from_index(bank_index)
            row_key = (channel, rank, bank, logical_row)
            # Interleaving packs many frames into one row; every one of
            # them can reach the foreign neighbourhood, so all must move.
            for frame in sorted(system.frames_in_row(row_key)):
                if system.allocator.owner_of(frame) is None:
                    continue
                if self._evacuate_frame(frame):
                    quarantined += 1
        self.bump("frames_quarantined", quarantined)
        return quarantined

    def _evacuate_frame(self, frame: int) -> bool:
        from repro.defenses.frequency import remap_page_of_line

        system = self.system
        assert system is not None
        line = frame * system.mmu.lines_per_page
        result = remap_page_of_line(system, line, now=0, free_old_frame=False)
        if result is None:
            return False
        # Escaping rows stay escaping forever: retire the frame so the
        # allocator never recycles it into the same treacherous row.
        system.allocator.retire(result.vacated_frame)
        return True


class BankPartitionDefense(_PolicyDefense):
    """PALLOC-style bank partitioning [61] — isolation by giving up
    interleaving (and its performance, §4.1)."""

    name = "bank-partition"
    policy = AllocationPolicy.BANK_PARTITION
    traits = DefenseTraits(
        mitigation_class=MitigationClass.ISOLATION,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=False,
        covers_dma=True,
        scales_with_density=True,
    )
    requires: Tuple[Primitive, ...] = ()  # a BIOS toggle, not a primitive


class GuardRowsDefense(_PolicyDefense):
    """ZebRAM-style guard rows [34]: ``b`` dead rows between domains."""

    name = "guard-rows"
    policy = AllocationPolicy.GUARD_ROWS
    traits = DefenseTraits(
        mitigation_class=MitigationClass.ISOLATION,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=False,
        covers_dma=True,
        scales_with_density=False,  # guards ∝ blast radius eat capacity
    )
    requires: Tuple[Primitive, ...] = ()

    def cost(self) -> DefenseCost:
        if self.system is None:
            return DefenseCost()
        return DefenseCost(
            reserved_capacity_fraction=self.system.allocator.capacity_overhead()
        )
