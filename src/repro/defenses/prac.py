"""PRAC: per-row activation counting inside the DRAM die.

The next-generation in-DRAM mitigation the defense zoo was missing
(PRAC/PRACtical, arxiv 2507.18581): every row carries an *exact*
activation counter co-located with the mat, updated on precharge.  No
sampling, no Misra-Gries churn — any row that crosses the alert
threshold is guaranteed to be seen, which closes the many-sided bypass
surface that defeats tracker-based TRR (E6).

Two implementation realities from the PRACtical design are modeled
explicitly because they are where the scheme's costs live:

* **subarray-level update batching** — counter updates are performed by
  per-subarray logic and queued until the subarray's update buffer
  fills (or a REF flushes everything), so threshold crossings become
  visible a bounded number of ACTs late;
* **bank-level recovery isolation** — recovery refreshes (the RFM-style
  "back-off" work) are serviced during REF and block only the banks
  that actually have pending recoveries; the other banks proceed.
  The per-burst counters record exactly that split.

``PracDefense`` rides the :class:`~repro.dram.device` mitigation hook
(``on_activate`` inline on every ACT — scalar and columnar bulk legs
alike — and ``targets_to_refresh`` consumed at each REF burst on
flushed state), so it is bulk-exact with ``supports_bulk_acts = True``
and zero engine changes.

Its ``cost()`` is the §3 density-scaling liability made concrete: one
counter *per row*, so tracker storage grows linearly with chip
capacity — the opposite end of the trade-off from vendor TRR's fixed
handful of entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense, DefenseCost
from repro.defenses.refresh_centric import _safe_threshold
from repro.dram.geometry import DdrAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

BankKey = Tuple[int, int, int]
SubarrayKey = Tuple[int, int, int, int]

#: bits per in-array activation counter (PRAC-style, saturating)
_PRAC_COUNTER_BITS = 16
#: bits per pending-update queue entry (row tag within the subarray +
#: coalesced delta)
_QUEUE_ENTRY_BITS = 24


class PracDefense(Defense):
    """Exact per-row activation counters with deferred recovery.

    ``threshold_margin`` sizes the per-row alert threshold off the
    disturbance profile exactly like the MC-side trackers do
    (:func:`~repro.defenses.refresh_centric._safe_threshold`), leaving
    headroom for the two detection lags the design accepts: updates
    parked in a subarray queue (≤ ``batch_limit`` ACTs) and recovery
    deferred to the next REF burst (≤ tREFI of further ACTs).

    A row's counter resets only when its recovery fires — counts
    persist across refresh windows, which can only over-trigger
    (conservative), never under-trigger.
    """

    name = "prac"
    table1_row = ("none — self-contained in-DRAM", "PRAC per-row counters")
    mitigation_counters = ("rows_recovered",)
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="dram",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,  # in DRAM, it sees every ACT
        scales_with_density=False,  # storage ∝ rows: the §3 liability
    )
    requires: Tuple[Primitive, ...] = ()  # self-contained in the module

    def __init__(
        self,
        threshold_margin: float = 0.45,
        batch_limit: int = 8,
        recovery_radius: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < threshold_margin < 1.0:
            raise ValueError("threshold_margin must be in (0, 1)")
        if batch_limit < 1:
            raise ValueError("batch_limit must be >= 1")
        if recovery_radius is not None and recovery_radius < 1:
            raise ValueError("recovery_radius must be >= 1")
        self.threshold_margin = threshold_margin
        self.batch_limit = batch_limit
        self.recovery_radius = recovery_radius
        self._threshold = 0
        # per bank: row -> exact activation count (the in-array counters)
        self._counts: Dict[BankKey, Dict[int, int]] = {}
        # per (bank, subarray): row -> (pending delta, exemplar address);
        # the subarray update queue that batches counter maintenance
        self._pending: Dict[SubarrayKey, Dict[int, List]] = {}
        # per bank: rows that crossed the threshold, awaiting the next
        # REF burst (exemplar addresses, insertion-ordered)
        self._recovery_queues: Dict[BankKey, Dict[int, DdrAddress]] = {}

    # ------------------------------------------------------------------
    # Defense lifecycle
    # ------------------------------------------------------------------

    def _wire(self, system: "System") -> None:
        if system.device.mitigation is not None:
            raise RuntimeError("the DRAM module already has a mitigation")
        self._threshold = _safe_threshold(system, self.threshold_margin)
        if self.recovery_radius is None:
            self.recovery_radius = system.profile.blast_radius
        system.device.mitigation = self

    def cost(self) -> DefenseCost:
        """One counter per row plus the per-subarray update queues —
        storage that grows *linearly with capacity*, which is exactly
        the §3 scaling argument PRAC concretizes."""
        if self.system is None:
            return DefenseCost()
        geometry = self.system.geometry
        counter_bits = geometry.rows_total * _PRAC_COUNTER_BITS
        subarrays_total = geometry.banks_total * geometry.subarrays_per_bank
        queue_bits = subarrays_total * self.batch_limit * _QUEUE_ENTRY_BITS
        return DefenseCost(sram_bits=counter_bits + queue_bits)

    # ------------------------------------------------------------------
    # InDramMitigation protocol (driven by the DRAM device)
    # ------------------------------------------------------------------

    def on_activate(self, address: DdrAddress, time_ns: int) -> None:
        geometry = self.system.geometry if self.system is not None else None
        assert geometry is not None, "not attached"
        subarray = geometry.subarray_of_row(address.row)
        bucket = self._pending.setdefault(
            address.bank_key() + (subarray,), {}
        )
        entry = bucket.get(address.row)
        if entry is not None:
            entry[0] += 1
        else:
            bucket[address.row] = [1, address]
        if sum(item[0] for item in bucket.values()) >= self.batch_limit:
            self._flush_bucket(address.bank_key(), bucket)

    def targets_to_refresh(self, time_ns: int) -> List[Tuple[DdrAddress, int]]:
        # REF flushes every subarray's update queue first: crossings
        # parked in a queue must not outlive the burst.
        for key, bucket in self._pending.items():
            if bucket:
                self._flush_bucket(key[:3], bucket)
        targets: List[Tuple[DdrAddress, int]] = []
        blocked = 0
        for bank_key, queue in self._recovery_queues.items():
            if not queue:
                continue
            blocked += 1
            for row, exemplar in queue.items():
                targets.append((exemplar, self.recovery_radius))
                # recovery resets the in-array counter
                self._counts.get(bank_key, {}).pop(row, None)
            self.bump("rows_recovered", len(queue))
            queue.clear()
        if targets:
            # bank-level recovery isolation: only banks with pending
            # recoveries stall for the extra refreshes; the rest of the
            # module proceeds untouched.
            banks_total = self.system.geometry.banks_total
            self.bump("recoveries")
            self.bump("recovery_banks_blocked", blocked)
            self.bump("banks_spared", banks_total - blocked)
        return targets

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _flush_bucket(self, bank_key: BankKey, bucket: Dict[int, List]) -> None:
        """Merge one subarray's queued deltas into the in-array
        counters; rows crossing the alert threshold join their bank's
        recovery queue."""
        table = self._counts.setdefault(bank_key, {})
        queue = self._recovery_queues.setdefault(bank_key, {})
        for row, (delta, exemplar) in bucket.items():
            count = table.get(row, 0) + delta
            table[row] = count
            if count >= self._threshold and row not in queue:
                queue[row] = exemplar
                self.bump("alerts")
        bucket.clear()
        self.bump("update_batches_flushed")
