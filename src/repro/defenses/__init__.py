"""All defenses, paper proposals and baselines, behind one lifecycle.

Proposed by the paper (require MC primitives):
``SubarrayIsolationDefense``, ``AggressorRemapDefense``,
``CacheLineLockingDefense``, ``TargetedRefreshDefense``.

Baselines the paper positions against:
``VendorTrr`` (in-DRAM), ``ParaDefense``, ``BlockHammerDefense``,
``GrapheneDefense``, ``TwiceDefense`` (in-MC), ``AnvilDefense``,
``BankPartitionDefense``, ``GuardRowsDefense`` (software on today's
hardware).

Next-generation mitigations (post-paper, same lifecycle):
``PracDefense`` (in-DRAM per-row counters), ``BreakHammerDefense``
(suspect-domain throttling layered on a base mitigation).

``repro.defenses.registry`` derives the name→class map, per-defense
build overrides, and platform placement from ``ALL_DEFENSES`` so every
downstream sweep (CLI, faults harness, experiments, smokes) picks up a
new defense by registration alone.
"""

from repro.defenses.base import Defense, DefenseCost
from repro.defenses.breakhammer import BreakHammerDefense
from repro.defenses.enclave_guard import EnclaveGuardDefense, verify_placement
from repro.defenses.frequency import (
    AggressorRemapDefense,
    BlockHammerDefense,
    CacheLineLockingDefense,
    remap_page_of_line,
)
from repro.defenses.isolation import (
    BankPartitionDefense,
    GuardRowsDefense,
    SubarrayIsolationDefense,
)
from repro.defenses.prac import PracDefense
from repro.defenses.refresh_centric import (
    AnvilDefense,
    GrapheneDefense,
    ParaDefense,
    TargetedRefreshDefense,
    TwiceDefense,
)
from repro.defenses.scoped import CriticalRowGuardDefense
from repro.defenses.vendor import SamplingTrr, VendorTrr

ALL_DEFENSES = (
    SubarrayIsolationDefense,
    BankPartitionDefense,
    GuardRowsDefense,
    AggressorRemapDefense,
    CacheLineLockingDefense,
    BlockHammerDefense,
    TargetedRefreshDefense,
    AnvilDefense,
    ParaDefense,
    GrapheneDefense,
    TwiceDefense,
    VendorTrr,
    SamplingTrr,
    EnclaveGuardDefense,
    CriticalRowGuardDefense,
    PracDefense,
    BreakHammerDefense,
)

__all__ = [
    "ALL_DEFENSES",
    "AggressorRemapDefense",
    "AnvilDefense",
    "BankPartitionDefense",
    "BlockHammerDefense",
    "BreakHammerDefense",
    "CacheLineLockingDefense",
    "CriticalRowGuardDefense",
    "Defense",
    "DefenseCost",
    "EnclaveGuardDefense",
    "SamplingTrr",
    "verify_placement",
    "GrapheneDefense",
    "GuardRowsDefense",
    "ParaDefense",
    "PracDefense",
    "SubarrayIsolationDefense",
    "TargetedRefreshDefense",
    "TwiceDefense",
    "VendorTrr",
    "remap_page_of_line",
]
