"""Frequency-centric defenses: kill the >MAC activation condition (§4.2).

Three implementations:

``BlockHammerDefense`` — the in-MC state of the art [59] the paper
positions against: per-row activation counters with throttling.  Works
without software, but its tracker SRAM and its throttling stalls grow as
MAC falls (§3) — experiment E5 measures both.

``AggressorRemapDefense`` — the paper's proposal: the *precise* ACT
interrupt reports a hot physical address; the host OS wear-levels the
encompassing page to a fresh frame with the uncore move, so no physical
row ever accumulates MAC activations.  Pure software policy + two small
MC primitives.

``CacheLineLockingDefense`` — the paper's cheaper first line of defense:
pin the reported hot line in reserved LLC ways for the rest of the
refresh interval; subsequent accesses hit in cache and generate no ACTs
at all.  Falls back to remapping when the locked ways fill up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.cpu.cache import LockError
from repro.defenses.base import Defense, DefenseCost
from repro.dram.geometry import DdrAddress
from repro.hostos.allocator import OutOfMemoryError
from repro.mc.counters import ActInterrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

RowId = Tuple[int, int, int, int]

#: counter width for BlockHammer-style trackers, bits
_COUNTER_BITS = 16
#: row-tag width, bits
_TAG_BITS = 20


class BlockHammerDefense(Defense):
    """BlockHammer-style in-MC throttling [59].

    Counts ACTs per row per epoch (an epoch is half a refresh window, as
    in the paper's dual counting-bloom-filter scheme; we count exactly,
    which only *understates* the real hardware cost).  A row beyond
    ``threshold_fraction × MAC`` ACTs in the epoch has its further ACTs
    delayed so it cannot reach the MAC before the epoch ends.
    """

    name = "blockhammer"
    traits = DefenseTraits(
        mitigation_class=MitigationClass.FREQUENCY,
        location="mc",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,
        scales_with_density=False,  # tracker + stalls grow as MAC drops
    )
    requires: Tuple[Primitive, ...] = ()  # self-contained MC hardware

    def __init__(self, threshold_fraction: Optional[float] = None) -> None:
        """``threshold_fraction``: per-epoch row-ACT budget as a fraction
        of MAC.  ``None`` (default) computes the safe budget from the
        disturbance profile: a victim absorbs pressure from up to
        ``2 * sum(decay**(d-1))`` aggressor rows and is only guaranteed a
        sweep refresh once per window (= two epochs), so the budget is
        ``MAC / (amplification * 2)`` with 10% margin — mirroring
        BlockHammer's blacklisting guarantee."""
        super().__init__()
        if threshold_fraction is not None and not 0.0 < threshold_fraction < 1.0:
            raise ValueError("threshold_fraction must be in (0, 1)")
        self.threshold_fraction = threshold_fraction
        self._counts: Dict[RowId, int] = {}
        self._epoch_end = 0
        self._epoch_len = 0
        self._threshold = 0
        self._mac = 0
        self._peak_rows_tracked = 0

    def _wire(self, system: "System") -> None:
        self._epoch_len = max(1, system.timings.tREFW // 2)
        self._epoch_end = self._epoch_len
        self._mac = system.profile.mac
        if self.threshold_fraction is not None:
            fraction = self.threshold_fraction
        else:
            profile = system.profile
            amplification = 2 * sum(
                profile.weight(d) for d in range(1, profile.blast_radius + 1)
            )
            epochs_per_window = 2
            fraction = 0.8 / (amplification * epochs_per_window)
        self._threshold = max(1, int(system.profile.mac * fraction))
        # surfaced from the first gated ACT on; pre-seeded so the metric
        # exists (as 0) even for workloads that never activate a row
        self.counters["peak_rows_tracked"] = self._peak_rows_tracked
        system.controller.add_act_gate(self._gate)

    def cost(self) -> DefenseCost:
        """Tracker sized for the worst case: every row that could legally
        reach the threshold in one epoch needs an entry.  This is the
        §3 scaling liability: entries ∝ tREFW / (threshold × tRC)."""
        if self.system is None:
            return DefenseCost()
        timings = self.system.timings
        max_acts_per_epoch = self._epoch_len // timings.tRC
        entries = max(1, max_acts_per_epoch // self._threshold)
        banks = self.system.geometry.banks_total
        return DefenseCost(
            sram_bits=entries * (_COUNTER_BITS + _TAG_BITS) * banks
        )

    # -- the throttle gate ----------------------------------------------

    def _gate(self, address: DdrAddress, now: int, domain: Optional[int]) -> int:
        if now >= self._epoch_end:
            self._counts.clear()
            while self._epoch_end <= now:
                self._epoch_end += self._epoch_len
        row = address.row_key()
        count = self._counts.get(row, 0) + 1
        self._counts[row] = count
        if len(self._counts) > self._peak_rows_tracked:
            self._peak_rows_tracked = len(self._counts)
            self.counters["peak_rows_tracked"] = self._peak_rows_tracked
        if count <= self._threshold:
            return 0
        # Blacklisted: pace the row so it gains at most ~1/8 of its safe
        # budget for the rest of the epoch (the budget itself already
        # carries the amplification/epoch margin).  Floor at 1 ns: near
        # epoch end the quotient rounds to 0, and an unfloored gate would
        # let a blacklisted row stream ACTs at full rate — unthrottled
        # *and* uncounted.
        remaining_time = max(1, self._epoch_end - now)
        trickle_budget = max(1, self._threshold // 8)
        delay = max(1, remaining_time // trickle_budget)
        self.bump("throttled_acts")
        self.bump("throttle_delay_ns", delay)
        return delay


class AggressorRemapDefense(Defense):
    """The paper's ACT wear-leveling (§4.2): remap + move hot pages.

    On each precise ACT interrupt the host OS moves the encompassing
    page of the reported address to a freshly allocated frame (same
    domain, same policy) using the uncore move, updates the page table,
    and frees the old frame.  No physical row can then accumulate MAC
    activations, no matter what the access pattern is — including DMA
    traffic, which the MC counter sees.
    """

    name = "aggressor-remap"
    table1_row = ("precise ACT interrupt", "aggressor remapping")
    traits = DefenseTraits(
        mitigation_class=MitigationClass.FREQUENCY,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,
        scales_with_density=True,
    )
    requires = (Primitive.PRECISE_ACT_INTERRUPT, Primitive.UNCORE_MOVE)

    def __init__(
        self,
        interrupt_fraction: float = 0.125,
        jitter_fraction: float = 0.25,
        park_vacated: bool = True,
        rotate_destinations: bool = True,
    ):
        """``interrupt_fraction``: counter threshold as a fraction of MAC
        (must leave slack for noise and the blast-radius weighting);
        ``jitter_fraction``: randomized reset slack, as a fraction of the
        threshold (§4.2 anti-evasion).

        ``park_vacated`` and ``rotate_destinations`` are the two
        mechanisms that make wear-leveling actually level (see
        :func:`remap_page_of_line`); they exist as switches only so the
        ablation benchmark can demonstrate that each is load-bearing.
        """
        super().__init__()
        if not 0.0 < interrupt_fraction < 1.0:
            raise ValueError("interrupt_fraction must be in (0, 1)")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.interrupt_fraction = interrupt_fraction
        self.jitter_fraction = jitter_fraction
        self.park_vacated = park_vacated
        self.rotate_destinations = rotate_destinations
        self._in_handler = False
        self._parking: Optional[FrameParkingLot] = None
        self._dest_rows: Deque = deque(maxlen=16)

    def _wire(self, system: "System") -> None:
        threshold = max(2, int(system.profile.mac * self.interrupt_fraction))
        jitter = int(threshold * self.jitter_fraction)
        system.controller.configure_counters(
            threshold, precise=True, reset_jitter=jitter
        )
        system.controller.subscribe_interrupts(self._on_interrupt)
        self._parking = FrameParkingLot(system)
        self._dest_rows = deque(maxlen=_rotation_rows(system))

    def _on_interrupt(self, interrupt: ActInterrupt) -> None:
        assert self.system is not None
        if self._in_handler:
            # ACTs issued by the handler's own uncore moves re-enter the
            # counter; a real OS masks the interrupt while servicing it.
            self.bump("masked_interrupts")
            return
        if interrupt.physical_line is None:  # imprecise hardware: useless
            self.bump("useless_imprecise_interrupts")
            return
        self.bump("interrupts")
        assert self._parking is not None
        self._parking.tick(interrupt.time_ns)
        avoid = (
            frozenset(self._dest_rows) if self.rotate_destinations else None
        )
        self._in_handler = True
        try:
            result = remap_page_of_line(
                self.system, interrupt.physical_line, interrupt.time_ns,
                free_old_frame=not self.park_vacated,
                avoid_rows=avoid,
            )
        finally:
            self._in_handler = False
        if result is not None:
            if self.park_vacated:
                self._parking.park(result.vacated_frame)
            if self.rotate_destinations:
                self._dest_rows.append(result.hot_line_new_row)
            self.bump("pages_moved")
        else:
            self.bump("moves_skipped")


class CacheLineLockingDefense(Defense):
    """The paper's cache-line locking first line of defense (§4.2).

    Locked lines stop producing ACTs for the rest of the refresh
    interval (their flushes are architecturally inert and their loads
    hit in the LLC).  When a set's locked-way budget fills, falls back
    to page remapping — exactly the two-tier policy §4.2 sketches.
    """

    name = "line-locking"
    table1_row = ("precise ACT interrupt + line locking", "cache line locking")
    traits = DefenseTraits(
        mitigation_class=MitigationClass.FREQUENCY,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=False,  # DMA never goes through the LLC...
        scales_with_density=True,
    )
    requires = (Primitive.PRECISE_ACT_INTERRUPT, Primitive.CACHE_LINE_LOCKING)

    def __init__(
        self,
        interrupt_fraction: float = 0.125,
        jitter_fraction: float = 0.25,
        remap_fallback: bool = True,
        escalate_after_locks_per_row: int = 4,
    ) -> None:
        """``escalate_after_locks_per_row``: a hammer that rotates its
        column defeats line-granular locking — each lock silences one of
        128 lines while the row keeps activating.  Once this many lines
        of a single row have been locked in one window, the defense
        escalates to remapping the whole page (the second tier of
        §4.2's policy)."""
        super().__init__()
        if not 0.0 < interrupt_fraction < 1.0:
            raise ValueError("interrupt_fraction must be in (0, 1)")
        if escalate_after_locks_per_row < 1:
            raise ValueError("escalate_after_locks_per_row must be >= 1")
        self.interrupt_fraction = interrupt_fraction
        self.jitter_fraction = jitter_fraction
        self.remap_fallback = remap_fallback
        self.escalate_after_locks_per_row = escalate_after_locks_per_row
        self._window_end = 0
        self._in_handler = False
        self._parking: Optional[FrameParkingLot] = None
        self._dest_rows: Deque = deque(maxlen=16)
        self._row_lock_counts: Dict[RowId, int] = {}

    def _wire(self, system: "System") -> None:
        if self.remap_fallback:
            system.primitives.require(Primitive.UNCORE_MOVE)
        threshold = max(2, int(system.profile.mac * self.interrupt_fraction))
        jitter = int(threshold * self.jitter_fraction)
        system.controller.configure_counters(
            threshold, precise=True, reset_jitter=jitter
        )
        system.controller.subscribe_interrupts(self._on_interrupt)
        self._window_end = system.timings.tREFW
        self._parking = FrameParkingLot(system)
        self._dest_rows = deque(maxlen=_rotation_rows(system))

    def cost(self) -> DefenseCost:
        ways = self.system.cache.max_locked_ways if self.system else 0
        return DefenseCost(reserved_cache_ways=ways)

    def _on_interrupt(self, interrupt: ActInterrupt) -> None:
        assert self.system is not None
        if self._in_handler:
            self.bump("masked_interrupts")
            return
        if interrupt.physical_line is None:
            self.bump("useless_imprecise_interrupts")
            return
        self.bump("interrupts")
        self._in_handler = True
        try:
            self._handle(interrupt)
        finally:
            self._in_handler = False

    def _handle(self, interrupt: ActInterrupt) -> None:
        self._expire_window(interrupt.time_ns)
        assert self._parking is not None
        self._parking.tick(interrupt.time_ns)
        if interrupt.from_dma:
            # DMA buffers are uncached; locking cannot absorb them.
            # Remap instead (the fallback covers the blind spot).
            if self.remap_fallback:
                result = remap_page_of_line(
                    self.system, interrupt.physical_line, interrupt.time_ns,
                    free_old_frame=False,
                    avoid_rows=frozenset(self._dest_rows),
                )
                if result is not None:
                    self._parking.park(result.vacated_frame)
                    self._dest_rows.append(result.hot_line_new_row)
                    self.bump("dma_fallback_moves")
            return
        row = self.system.row_of_physical_line(interrupt.physical_line)
        locks_in_row = self._row_lock_counts.get(row, 0)
        if (
            self.remap_fallback
            and locks_in_row >= self.escalate_after_locks_per_row
        ):
            # The attacker is rotating columns within this row; locking
            # line by line cannot keep up — move the page instead.
            self.bump("rotation_escalations")
            self._fallback_move(interrupt)
            return
        try:
            writeback = self.system.cache.lock(interrupt.physical_line)
            self.bump("lines_locked")
            self._row_lock_counts[row] = locks_in_row + 1
            if writeback is not None:
                from repro.mc.controller import MemoryRequest

                self.system.controller.submit(
                    MemoryRequest(
                        time_ns=interrupt.time_ns,
                        physical_line=writeback,
                        is_write=True,
                    )
                )
        except LockError:
            self.bump("lock_budget_exhausted")
            if self.remap_fallback:
                self._fallback_move(interrupt)

    def _fallback_move(self, interrupt: ActInterrupt) -> None:
        result = remap_page_of_line(
            self.system, interrupt.physical_line, interrupt.time_ns,
            free_old_frame=False,
            avoid_rows=frozenset(self._dest_rows),
        )
        if result is not None:
            self._parking.park(result.vacated_frame)
            self._dest_rows.append(result.hot_line_new_row)
            self.bump("fallback_moves")

    def _expire_window(self, now: int) -> None:
        """Locks last one refresh interval (§4.2), then everything is
        released — the hammering clock restarted anyway."""
        if now < self._window_end:
            return
        released = len(self.system.cache.locked_lines())
        self.system.cache.unlock_all()
        self._row_lock_counts.clear()
        if released:
            self.bump("locks_expired", released)
        refw = self.system.timings.tREFW
        while self._window_end <= now:
            self._window_end += refw


@dataclass(frozen=True)
class RemapResult:
    """Outcome of one wear-leveling page move."""

    vacated_frame: int
    new_frame: int
    #: DRAM row now holding the line that triggered the move — the row
    #: the attacker's next accesses will hammer, fed into the caller's
    #: destination-rotation buffer
    hot_line_new_row: RowId


def remap_page_of_line(
    system: "System",
    physical_line: int,
    now: int,
    free_old_frame: bool = True,
    avoid_rows: Optional[frozenset] = None,
) -> Optional[RemapResult]:
    """Shared wear-leveling mechanics (§4.2): move the page containing
    ``physical_line`` to a fresh frame of the same domain.

    Returns ``None`` when there is nothing to do (unowned frame) or no
    replacement frame is available.

    Two rotation requirements make wear-leveling actually level:

    * ``free_old_frame=False`` leaves the vacated frame allocated
      (parked) — releasing it immediately lets a first-fit allocator
      hand the *same* frame back on the next move, and the hammering
      ping-pongs between two locations whose victims' accumulated
      pressure never resets (see ``FrameParkingLot``);
    * ``avoid_rows`` keeps the destination away from recently used
      destination rows — multiple frames share one DRAM row, so naive
      consecutive destinations re-concentrate ACTs into a single row.
    """
    frame = system.mapper.frame_of_line(physical_line)
    asid = system.allocator.owner_of(frame)
    if asid is None:
        return None
    located = system.mmu.reverse_lookup(frame)
    if located is None:
        return None
    owner_asid, virtual_page = located
    try:
        (new_frame,) = system.allocator.allocate(asid, 1, avoid_rows=avoid_rows)
    except OutOfMemoryError:
        return None

    lines_per_page = system.mmu.lines_per_page
    old_base = frame * lines_per_page
    new_base = new_frame * lines_per_page
    when = now
    for offset in range(lines_per_page):
        old_line = old_base + offset
        if system.cache.is_locked(old_line):
            system.cache.unlock(old_line)
        try:
            system.cache.flush(old_line)
        except LockError:  # pragma: no cover - unlocked above
            pass
        when = system.controller.uncore_move(old_line, new_base + offset, when)
    system.mmu.remap_page(owner_asid, virtual_page, new_frame)
    if free_old_frame:
        system.allocator.free(frame)
    hot_offset = physical_line - old_base
    hot_new_row = system.mapper.line_to_ddr(new_base + hot_offset).row_key()
    return RemapResult(frame, new_frame, hot_new_row)


def _rotation_rows(system: "System") -> int:
    """Destination-rotation depth: enough recently used destination rows
    to keep any single row's per-window stint ACTs under MAC/2.  One
    stint deposits ~threshold ACTs, the channel can issue at most
    tREFW/tRC ACTs per window, so rows needed = 2 * acts_per_window/MAC."""
    acts_per_window = system.timings.tREFW // system.timings.tRC
    needed = -(-2 * acts_per_window // max(1, system.profile.mac))
    return max(16, min(needed, system.geometry.rows_total // 2))


class FrameParkingLot:
    """Holds vacated frames until the refresh window rolls over, then
    returns them to the allocator — the rotation that makes ACT
    wear-leveling actually level."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self._parked: List[int] = []
        self._window_end = system.timings.tREFW

    def park(self, frame: int) -> None:
        self._parked.append(frame)

    def tick(self, now: int) -> int:
        """Release parked frames if the window rolled; returns how many
        were released."""
        if now < self._window_end:
            return 0
        released = len(self._parked)
        for frame in self._parked:
            self.system.allocator.free(frame)
        self._parked.clear()
        refw = self.system.timings.tREFW
        while self._window_end <= now:
            self._window_end += refw
        return released
