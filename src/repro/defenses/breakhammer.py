"""BreakHammer: throttle the threads that *cause* mitigations.

The second next-generation mitigation from the defense-zoo roadmap
item (arxiv 2404.13477).  BreakHammer is not a tracker itself — it
layers on top of whatever Rowhammer mitigation the platform already
runs and asks a different question: *which trust domain keeps setting
that mitigation off?*  Each triggered mitigation (a TRR target, a PRAC
recovery, a neighbor refresh) is blamed on the domain dominating the
recent ACT stream; domains whose blame score crosses a suspicion
threshold get their ACTs throttled through the same act-gate primitive
BlockHammer uses, starving the attack of activation bandwidth while
benign domains — which trigger mitigations rarely — never pay.

The base defense is pluggable: any :class:`~repro.defenses.base.Defense`
that declares ``mitigation_counters`` (the generic "I just spent work
mitigating" signal) can be wrapped.  The default base is
:class:`~repro.defenses.prac.PracDefense` — the canonical pairing in
the PRACtical line, and bulk-exact, so the composite keeps
``supports_bulk_acts = True``.  Wrapping a scalar-only base (say
Graphene) works too; the composite then honestly reports itself
scalar-only and rides the counted ordered fallback.

The throttle gate runs inline on every ACT in both the scalar and the
columnar bulk submission paths, so the composite is bulk == scalar by
construction, like BlockHammer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense, DefenseCost
from repro.dram.geometry import DdrAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

#: per-domain score-table entry: domain id + saturating blame score
_SCORE_ENTRY_BITS = 32
#: fixed score-table capacity (hardware registers, not per-row SRAM —
#: BreakHammer's pitch is precisely that its state does *not* grow
#: with density)
_SCORE_TABLE_ENTRIES = 64

#: key used for ACTs with no attached trust domain (kernel, DMA)
_NO_DOMAIN = -1


class BreakHammerDefense(Defense):
    """Suspect-domain throttling layered on a base mitigation.

    ``suspect_threshold`` is the per-epoch blame score (attributed
    mitigations) past which a domain is throttled; scores halve at
    every epoch roll (half a refresh window, as in BlockHammer's
    dual-epoch scheme) so suspicion decays once the pressure stops.
    Benign domains trigger at most a handful of mitigations per epoch,
    so the default threshold keeps them untouched while a hammering
    domain — which forces mitigation work every REF — crosses it
    within its first window.
    """

    name = "breakhammer"
    table1_row = ("none — self-contained in-MC", "BreakHammer suspect throttling")
    traits = DefenseTraits(
        mitigation_class=MitigationClass.FREQUENCY,
        location="mc",
        stops_cross_domain=True,
        stops_intra_domain=True,
        covers_dma=True,  # un-attributed ACT streams are scored too
        scales_with_density=True,  # fixed score table; base does the tracking
    )
    requires: Tuple[Primitive, ...] = ()  # self-contained MC hardware

    def __init__(
        self,
        base: Optional[Defense] = None,
        suspect_threshold: int = 64,
        trickle_fraction: int = 8,
    ) -> None:
        """``base``: the underlying mitigation whose triggers are
        scored; ``None`` builds the default ``PracDefense``.  The base
        must expose at least one name in ``mitigation_counters`` —
        without that signal there is nothing to attribute."""
        super().__init__()
        if suspect_threshold < 1:
            raise ValueError("suspect_threshold must be >= 1")
        if trickle_fraction < 1:
            raise ValueError("trickle_fraction must be >= 1")
        if base is None:
            from repro.defenses.prac import PracDefense

            base = PracDefense()
        if not base.mitigation_counters:
            raise ValueError(
                f"base defense {base.name!r} declares no "
                f"mitigation_counters; BreakHammer has nothing to score"
            )
        self.base = base
        self.suspect_threshold = suspect_threshold
        self.trickle_fraction = trickle_fraction
        # the composite is only as bulk-safe as its base: the gate
        # itself is inline on both paths, but a scalar-only base still
        # forces the ordered fallback
        self.supports_bulk_acts = base.supports_bulk_acts
        self._scores: Dict[int, int] = {}
        self._acts: Dict[int, int] = {}
        self._suspects: set = set()
        self._epoch_len = 0
        self._epoch_end = 0
        self._trickle_budget = 1
        self._last_mitigations = 0

    # ------------------------------------------------------------------
    # Defense lifecycle
    # ------------------------------------------------------------------

    def _wire(self, system: "System") -> None:
        if self.base.attached:
            raise RuntimeError(
                f"base defense {self.base.name!r} is already attached"
            )
        # The base attaches through the normal lifecycle: it validates
        # its own primitives, registers its own metrics group, and
        # joins system.defenses — BreakHammer only adds the gate.
        self.base.attach(system)
        self._epoch_len = max(1, system.timings.tREFW // 2)
        self._epoch_end = self._epoch_len
        self._trickle_budget = max(
            1, system.profile.mac // self.trickle_fraction
        )
        self.counters["peak_domains_tracked"] = 0
        system.controller.add_act_gate(self._gate)

    def cost(self) -> DefenseCost:
        """A fixed score table of domain registers plus whatever the
        base tracker costs.  The wrapper's own state is density-blind —
        its scaling story is the base's scaling story."""
        base = self.base.cost()
        return DefenseCost(
            sram_bits=base.sram_bits
            + _SCORE_TABLE_ENTRIES * _SCORE_ENTRY_BITS,
            reserved_capacity_fraction=base.reserved_capacity_fraction,
            reserved_cache_ways=base.reserved_cache_ways,
        )

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        row["base"] = self.base.name
        return row

    # ------------------------------------------------------------------
    # The throttle gate (inline on scalar and bulk ACT paths)
    # ------------------------------------------------------------------

    def _gate(self, address: DdrAddress, now: int, domain: Optional[int]) -> int:
        if now >= self._epoch_end:
            self._roll_epoch(now)
        key = _NO_DOMAIN if domain is None else domain
        self._acts[key] = self._acts.get(key, 0) + 1
        if len(self._acts) > self.counters["peak_domains_tracked"]:
            self.counters["peak_domains_tracked"] = len(self._acts)
        self._attribute_new_mitigations()
        score = self._scores.get(key, 0)
        if score < self.suspect_threshold:
            return 0
        if key not in self._suspects:
            self._suspects.add(key)
            self.bump("suspected_domains")
        # BlockHammer-style trickle: pace the suspect so it gets only a
        # sliver of activation bandwidth for the rest of the epoch.
        remaining_time = max(1, self._epoch_end - now)
        delay = max(1, remaining_time // self._trickle_budget)
        self.bump("throttled_acts")
        self.bump("throttle_delay_ns", delay)
        return delay

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _mitigation_total(self) -> int:
        counters = self.base.counters
        return sum(
            counters.get(name, 0) for name in self.base.mitigation_counters
        )

    def _attribute_new_mitigations(self) -> None:
        """Blame mitigations triggered since the last ACT on the domain
        dominating this epoch's ACT stream (deterministic tie-break on
        the domain id) — BreakHammer's attribution heuristic."""
        total = self._mitigation_total()
        delta = total - self._last_mitigations
        if delta <= 0:
            return
        self._last_mitigations = total
        top = min(
            self._acts, key=lambda key: (-self._acts[key], key)
        )
        self._scores[top] = self._scores.get(top, 0) + delta
        self.bump("mitigations_attributed", delta)

    def _roll_epoch(self, now: int) -> None:
        self._acts.clear()
        self._suspects.clear()
        # suspicion decays: halve every epoch, drop cleared domains
        self._scores = {
            key: score // 2
            for key, score in self._scores.items()
            if score // 2 > 0
        }
        while self._epoch_end <= now:
            self._epoch_end += self._epoch_len
