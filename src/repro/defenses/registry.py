"""Registry-derived plumbing: one place to learn how to host a defense.

``ALL_DEFENSES`` is the single source of truth for what defenses
exist.  Everything a downstream harness needs to *sweep* them — CLI
names, zero-argument construction, the allocator-policy build
overrides some of them demand, and the cheapest platform that can host
them — is derived here, so registering a new defense in
``repro.defenses`` is the whole integration story: the CLI, the faults
matrix, the experiment sweeps, and the CI smokes pick it up without
editing a hand-maintained list that silently goes stale (the bug this
module replaces in ``repro.faults.diff``).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.primitives import Primitive
from repro.defenses import ALL_DEFENSES, Defense
from repro.hostos.allocator import AllocationPolicy

#: registry name -> class, derived — never hand-maintained
DEFENSE_BY_NAME: Dict[str, Type[Defense]] = {
    cls.name: cls for cls in ALL_DEFENSES
}

#: allocator policies that demand non-interleaved (linear-mapped)
#: placement when the system is built (§4.1)
_LINEAR_POLICIES = (
    AllocationPolicy.BANK_PARTITION,
    AllocationPolicy.GUARD_ROWS,
)


def make_defense(name: str) -> Defense:
    """Construct the named defense with its default parameters."""
    try:
        cls = DEFENSE_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(DEFENSE_BY_NAME))
        raise ValueError(f"unknown defense {name!r}; known: {known}") from None
    return cls()


def required_policy(cls: Type[Defense]) -> Optional[AllocationPolicy]:
    """The allocator policy a defense refuses to attach without, if any
    (the ``_PolicyDefense`` subclasses declare it as ``policy``)."""
    policy = getattr(cls, "policy", None)
    return policy if isinstance(policy, AllocationPolicy) else None


def build_overrides(cls: Type[Defense]) -> Dict[str, object]:
    """Platform-factory keyword overrides the defense's placement
    policy demands (empty for most defenses).

    Only the linear-mapped policies (bank partitioning, guard rows)
    need overriding: subarray-aware placement is already the proposed
    platform's default, which :func:`platform_for` selects.
    """
    policy = required_policy(cls)
    if policy not in _LINEAR_POLICIES:
        return {}
    return {"allocation_policy": policy, "mapping": "linear"}


def apply_build_overrides(config, cls: Type[Defense]):
    """The same overrides, applied to an already-built
    :class:`~repro.sim.SystemConfig` (the CLI's resolution order)."""
    policy = required_policy(cls)
    if policy not in _LINEAR_POLICIES:
        return config
    return config.with_mapping("linear").with_policy(policy)


def platform_for(cls: Type[Defense]) -> str:
    """Cheapest platform preset that can host this defense: ``legacy``
    when it needs no primitives, ``legacy+primitives`` when it needs
    MC primitives, ``proposed`` when it additionally needs the
    subarray-isolated DRAM mapping."""
    if Primitive.SUBARRAY_ISOLATED_INTERLEAVING in cls.requires:
        return "proposed"
    if cls.requires:
        return "legacy+primitives"
    return "legacy"
