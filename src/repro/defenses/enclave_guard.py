"""Enclave-cooperative defenses (§4.4).

When enclave memory is *not* integrity-checked, the enclave itself needs
the paper's three defense classes, adapted to its trust model (the host
OS is untrusted, only the enclave and hardware are):

* **isolation** — the CPU reports the physical placement of the
  enclave's pages so the enclave can verify it sits alone in its
  subarray (:meth:`EnclaveGuardDefense.verify_placement`, mirroring how
  SGX enclaves already verify virtual→physical mappings);
* **frequency** — the CPU forwards ACT interrupts that concern the
  enclave's neighbourhood directly to the enclave, which can count them
  and decide to request a remap or peacefully exit
  (:attr:`~repro.hostos.enclave.EnclaveRuntime.act_warnings`);
* **refresh** — in subarray-isolated memory the enclave holds a grant to
  issue ``refresh`` on addresses in its own address space, repairing its
  potential victims without trusting the host.

``EnclaveGuardDefense`` is the hardware-side glue: it watches precise
ACT interrupts and performs the forwarding/refresh the paper sketches.
The evacuation policy (remap request after ``evacuate_after`` warnings)
is also modelled, executed by the (untrusted but DoS-capable-anyway)
host on the enclave's behalf.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.primitives import Primitive
from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.cpu.isa import ExecutionContext
from repro.defenses.base import Defense
from repro.mc.counters import ActInterrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System


class EnclaveGuardDefense(Defense):
    """Forward ACT warnings to enclaves; let granted enclaves refresh
    their own victims; evacuate persistent targets."""

    name = "enclave-guard"
    traits = DefenseTraits(
        mitigation_class=MitigationClass.REFRESH,
        location="software",
        stops_cross_domain=True,
        stops_intra_domain=False,  # the enclave defends itself only
        covers_dma=True,
        scales_with_density=True,
    )
    requires = (Primitive.PRECISE_ACT_INTERRUPT,)

    def __init__(
        self,
        interrupt_fraction: float = 0.125,
        jitter_fraction: float = 0.25,
        grant_refresh: bool = True,
        evacuate_after: int = 1 << 30,
    ) -> None:
        super().__init__()
        if not 0.0 < interrupt_fraction < 1.0:
            raise ValueError("interrupt_fraction must be in (0, 1)")
        self.interrupt_fraction = interrupt_fraction
        self.jitter_fraction = jitter_fraction
        self.grant_refresh = grant_refresh
        self.evacuate_after = evacuate_after
        self._in_handler = False
        self._evacuated: Dict[int, bool] = {}

    def _wire(self, system: "System") -> None:
        if self.grant_refresh:
            system.primitives.require(Primitive.REFRESH_INSTRUCTION)
        threshold = max(2, int(system.profile.mac * self.interrupt_fraction))
        jitter = int(threshold * self.jitter_fraction)
        system.controller.configure_counters(
            threshold, precise=True, reset_jitter=jitter
        )
        system.controller.subscribe_interrupts(self._on_interrupt)

    # ------------------------------------------------------------------
    # Interrupt path
    # ------------------------------------------------------------------

    def _on_interrupt(self, interrupt: ActInterrupt) -> None:
        system = self.system
        assert system is not None
        if self._in_handler:
            self.bump("masked_interrupts")
            return
        if interrupt.physical_line is None:
            self.bump("useless_imprecise_interrupts")
            return
        self._in_handler = True
        try:
            self._handle(interrupt)
        finally:
            self._in_handler = False

    def _handle(self, interrupt: ActInterrupt) -> None:
        system = self.system
        aggressor_row = system.row_of_physical_line(interrupt.physical_line)
        radius = system.profile.blast_radius
        victims = system.logical_neighbor_rows(aggressor_row, radius)
        threatened = set()
        for victim in victims:
            threatened.update(system.allocator.domains_in_row(victim))
        for asid in threatened:
            runtime = system.enclaves.get(asid)
            if runtime is None or runtime.locked_up:
                continue
            runtime.on_act_interrupt_forwarded()
            self.bump("warnings_forwarded")
            if self.grant_refresh:
                self._enclave_refresh(asid, victims, interrupt.time_ns)
            if runtime.should_evacuate(self.evacuate_after):
                self._evacuate(asid, victims, interrupt.time_ns)

    # ------------------------------------------------------------------
    # Enclave-side actions
    # ------------------------------------------------------------------

    def _enclave_refresh(self, asid: int, victim_rows, now: int) -> None:
        """§4.4: the enclave refreshes the threatened rows of *its own*
        address space (the grant never reaches foreign rows)."""
        system = self.system
        context = ExecutionContext(asid=asid, enclave_refresh_grant=True)
        for row in victim_rows:
            if asid not in system.allocator.domains_in_row(row):
                continue
            virtual_line = self._own_virtual_line_in_row(asid, row)
            if virtual_line is None:
                continue
            system.isa.refresh(context, virtual_line, now)
            self.bump("enclave_refreshes")

    def _evacuate(self, asid: int, victim_rows, now: int) -> None:
        """After enough warnings, the enclave requests a remap of its
        threatened pages (§4.4's option (a))."""
        from repro.defenses.frequency import remap_page_of_line

        system = self.system
        if self._evacuated.get(asid):
            return
        moved = 0
        for row in victim_rows:
            if asid not in system.allocator.domains_in_row(row):
                continue
            for frame in sorted(system.frames_in_row(row)):
                if system.allocator.owner_of(frame) != asid:
                    continue
                line = frame * system.mmu.lines_per_page
                if remap_page_of_line(system, line, now) is not None:
                    moved += 1
        if moved:
            self._evacuated[asid] = True
            self.bump("enclave_pages_evacuated", moved)

    def _own_virtual_line_in_row(self, asid: int, row) -> Optional[int]:
        """Find a virtual line of ``asid`` living in the given row (the
        enclave refreshes via its own virtual addresses)."""
        system = self.system
        channel, rank, bank, row_index = row
        from repro.dram.geometry import DdrAddress

        table = system.mmu.table(asid)
        lines_per_page = system.mmu.lines_per_page
        frame_set = {mapping.frame: mapping.virtual_page
                     for mapping in table.mappings()}
        for column in range(system.geometry.columns_per_row):
            address = DdrAddress(channel, rank, bank, row_index, column)
            try:
                line = system.mapper.ddr_to_line(address)
            except KeyError:
                continue
            frame = system.mapper.frame_of_line(line)
            virtual_page = frame_set.get(frame)
            if virtual_page is not None:
                offset = line - frame * lines_per_page
                return virtual_page * lines_per_page + offset
        return None


def verify_placement(system: "System", handle: "DomainHandle") -> bool:
    """§4.4 isolation check, from the enclave's point of view: the CPU
    reports the subarray(s) backing the enclave; the enclave verifies it
    shares them with no other domain."""
    groups = {
        system.geometry.subarray_of_row(row[3]) for row in handle.rows()
    }
    if len(groups) != 1:
        return False
    for other in system.registry:
        if other.asid == handle.asid:
            continue
        other_frames = system.allocator.frames_of(other.asid)
        for frame in other_frames:
            for row in system.mapper.rows_of_frame(frame):
                if system.geometry.subarray_of_row(row[3]) in groups:
                    return False
    return True
