"""Benchmark E6: TRR bypass with many-sided hammering (section 3)

Regenerates the TRRespass cliff artefact; see DESIGN.md section 3 (E6) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e6

from conftest import record_outcome


def test_e6_trr_bypass(benchmark):
    outcome = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
