"""Benchmark E4: taxonomy coverage matrix (section 2.2, 4)

Regenerates the defense x attack matrix artefact; see DESIGN.md section 3 (E4) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e4

from conftest import record_outcome


def test_e4_taxonomy_matrix(benchmark):
    outcome = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
