"""Benchmark E7: the DMA blind spot (sections 1, 4.2)

Regenerates the counter-placement table artefact; see DESIGN.md section 3 (E7) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e7

from conftest import record_outcome


def test_e7_dma_blindspot(benchmark):
    outcome = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
