"""Benchmark E1: paper Table 1 as an executable matrix

Regenerates the Table 1 artefact; see DESIGN.md section 3 (E1) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e1

from conftest import record_outcome


def test_e1_table1_matrix(benchmark):
    outcome = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
