"""Benchmark E8: frequency-centric defenses (section 4.2)

Regenerates the remap and locking table artefact; see DESIGN.md section 3 (E8) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e8

from conftest import record_outcome


def test_e8_frequency_defenses(benchmark):
    outcome = benchmark.pedantic(run_e8, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
