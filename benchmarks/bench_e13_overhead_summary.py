"""Benchmark E13: benign-workload overhead summary

Regenerates the overhead table artefact; see DESIGN.md section 3 (E13) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e13

from conftest import record_outcome


def test_e13_overhead_summary(benchmark):
    outcome = benchmark.pedantic(run_e13, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
