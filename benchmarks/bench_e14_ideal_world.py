"""Benchmark E14: the value of DRAM-vendor cooperation (section 5)

Regenerates the proposed-vs-ideal comparison; see DESIGN.md section 3
(E14) and EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e14

from conftest import record_outcome


def test_e14_ideal_world(benchmark):
    outcome = benchmark.pedantic(run_e14, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
