"""Benchmark E15: ECC memory under Rowhammer (related work [12])

Regenerates the SEC-DED outcome tables; see DESIGN.md section 3 (E15)
and EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e15

from conftest import record_outcome


def test_e15_ecc(benchmark):
    outcome = benchmark.pedantic(run_e15, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
