"""Benchmark E9: refresh mechanism comparison (section 4.3)

Regenerates the refresh-path table artefact; see DESIGN.md section 3 (E9) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e9

from conftest import record_outcome


def test_e9_refresh_paths(benchmark):
    outcome = benchmark.pedantic(run_e9, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
