"""Benchmark E10: counter-reset randomization vs evasion (section 4.2)

Regenerates the evasion table artefact; see DESIGN.md section 3 (E10) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e10

from conftest import record_outcome


def test_e10_counter_evasion(benchmark):
    outcome = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
