"""Benchmark E11: subarray inference and the remap audit (section 4.1)

Regenerates the inference tables artefact; see DESIGN.md section 3 (E11) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e11

from conftest import record_outcome


def test_e11_subarray_inference(benchmark):
    outcome = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
