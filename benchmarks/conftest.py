"""Benchmark helpers: each experiment bench runs the experiment once
(pedantic single round — these are simulations, not microbenchmarks),
prints the resulting tables, and persists them under benchmarks/out/ so
EXPERIMENTS.md can be regenerated from the artefacts."""

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def record_outcome(outcome):
    """Print and persist one ExperimentOutcome; return it."""
    OUT_DIR.mkdir(exist_ok=True)
    rendered = outcome.render()
    print()
    print(rendered)
    path = OUT_DIR / f"{outcome.experiment_id.lower()}.txt"
    path.write_text(rendered + "\n")
    return outcome
