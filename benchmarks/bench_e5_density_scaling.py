"""Benchmark E5: density scaling of defenses (section 3)

Regenerates the generation sweep artefact; see DESIGN.md section 3 (E5) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e5

from conftest import record_outcome


def test_e5_density_scaling(benchmark):
    outcome = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
