"""Benchmark the simulator's core hot paths.

Usage (from the repository root)::

    python benchmarks/bench_core_hotpaths.py            # full run, appends
    python benchmarks/bench_core_hotpaths.py --quick    # smoke, no write

The full run appends one entry to ``benchmarks/BENCH_core.json`` so the
throughput trajectory is tracked across PRs; see
:mod:`repro.analysis.bench` for the shape definitions.
"""

import sys
from pathlib import Path

# Runnable without an installed package or PYTHONPATH.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    from repro.analysis.bench import main as bench_main

    return bench_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
