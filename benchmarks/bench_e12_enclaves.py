"""Benchmark E12: enclave memory semantics (section 4.4)

Regenerates the enclave regime table artefact; see DESIGN.md section 3 (E12) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e12

from conftest import record_outcome


def test_e12_enclaves(benchmark):
    outcome = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
