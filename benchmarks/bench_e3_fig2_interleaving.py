"""Benchmark E3: subarray-isolated interleaving (paper Fig. 2, section 4.1)

Regenerates the Fig. 2 artefact; see DESIGN.md section 3 (E3) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e3

from conftest import record_outcome


def test_e3_fig2_interleaving(benchmark):
    outcome = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
