"""Methodology validations V1 (scale invariance) and V2 (seed
invariance): the checks that make every other benchmark's scaled
numbers trustworthy.  See repro.analysis.validation."""

import pytest

from repro.analysis.validation import VALIDATIONS

from conftest import record_outcome


@pytest.mark.parametrize("validation_id", sorted(VALIDATIONS))
def test_validation(benchmark, validation_id):
    runner = VALIDATIONS[validation_id]
    outcome = benchmark.pedantic(runner, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
