"""Benchmark E2: row-buffer semantics (paper Fig. 1)

Regenerates the Fig. 1 artefact; see DESIGN.md section 3 (E2) and
EXPERIMENTS.md for paper-claim vs. measured discussion.
"""

from repro.analysis import run_e2

from conftest import record_outcome


def test_e2_fig1_rowbuffer(benchmark):
    outcome = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
