"""Ablation benchmarks A1-A5: switch off each design choice DESIGN.md
calls out and show the scenario it protects regressing.  See
repro.analysis.ablations for the rationale of each."""

import pytest

from repro.analysis.ablations import ABLATIONS

from conftest import record_outcome


@pytest.mark.parametrize("ablation_id", sorted(ABLATIONS))
def test_ablation(benchmark, ablation_id):
    runner = ABLATIONS[ablation_id]
    outcome = benchmark.pedantic(runner, rounds=1, iterations=1)
    record_outcome(outcome)
    assert outcome.verdict, outcome.verdict_detail
