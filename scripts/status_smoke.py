#!/usr/bin/env python
"""CI smoke: campaign telemetry + ``repro status`` on a real journal.

Runs one small journaled campaign (4 seeds of E4 at a tiny scale), then
exercises the live-observability surface end to end:

* the journal records carry per-seed worker metrics snapshots;
* the telemetry sidecar holds the full lifecycle
  (``campaign_started`` → 4× ``seed_started``/``seed_finished`` →
  ``campaign_finished``);
* ``python -m repro status <journal>`` reports seed progress and the
  merged ``runtime.*``/``mc.*`` metrics, and its output is
  byte-identical across invocations (deterministic given the files);
* ``python -m repro report --campaign <journal>`` writes the JSON +
  markdown run report, and the JSON is byte-identical on a second
  build.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/status_smoke.py
"""

from __future__ import annotations

import contextlib
import dataclasses
import io
import json
import sys
import tempfile
from pathlib import Path

SEEDS = [101, 102, 103, 104]


def capture_cli(argv) -> str:
    from repro.cli import main

    stream = io.StringIO()
    with contextlib.redirect_stdout(stream):
        code = main(argv)
    if code != 0:
        raise SystemExit(
            f"command {argv} exited {code}:\n{stream.getvalue()}"
        )
    return stream.getvalue()


def main() -> int:
    from repro.analysis.parallel import REPLICATION_SPECS
    from repro.obs.events import (
        CAMPAIGN_FINISHED,
        CAMPAIGN_STARTED,
        SEED_FINISHED,
        SEED_STARTED,
    )
    from repro.runtime import (
        build_run_report,
        load_journal,
        read_telemetry,
        run_campaign,
        telemetry_path,
    )

    failures = []
    spec = dataclasses.replace(REPLICATION_SPECS["E4"], scale=8)
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "campaign.jsonl"
        result = run_campaign(
            spec, SEEDS, jobs=2, journal_path=journal, experiment="E4"
        )
        if not result.complete:
            failures.append("campaign did not complete")
        if len(result.worker_metrics) != len(SEEDS):
            failures.append(
                f"expected {len(SEEDS)} worker metric snapshots, got "
                f"{len(result.worker_metrics)}"
            )
        for key in ("mc.acts", "runtime.seeds_completed",
                    "mc.columnar_fallbacks.trace"):
            if key not in result.metrics:
                failures.append(f"campaign metrics missing {key}")

        snapshot = load_journal(journal)
        if len(snapshot.worker_metrics) != len(SEEDS):
            failures.append("journal records did not carry worker metrics")
        events = read_telemetry(telemetry_path(journal))
        counts = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        expected = {
            CAMPAIGN_STARTED: 1,
            SEED_STARTED: len(SEEDS),
            SEED_FINISHED: len(SEEDS),
            CAMPAIGN_FINISHED: 1,
        }
        for kind, want in expected.items():
            if counts.get(kind, 0) != want:
                failures.append(
                    f"telemetry: expected {want} {kind} events, got "
                    f"{counts.get(kind, 0)}"
                )

        first = capture_cli(["status", str(journal)])
        second = capture_cli(["status", str(journal)])
        if first != second:
            failures.append("repro status output is not deterministic")
        for needle in (f"{len(SEEDS)}/{len(SEEDS)} seeds done",
                       "mc.acts", "runtime.seeds_completed"):
            if needle not in first:
                failures.append(f"repro status output missing {needle!r}")

        capture_cli(["report", "--campaign", str(journal)])
        report_json = journal.with_name(journal.name + "-report.json")
        if not report_json.exists():
            failures.append("repro report --campaign wrote no JSON")
        else:
            rebuilt = json.dumps(
                build_run_report(journal), sort_keys=True, indent=2
            ) + "\n"
            if report_json.read_text() != rebuilt:
                failures.append("campaign run report is not deterministic")

    if failures:
        print("status smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"status smoke passed: {len(SEEDS)} seeds journaled, telemetry "
          f"complete, status/report deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
