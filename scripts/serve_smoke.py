#!/usr/bin/env python
"""CI smoke: the campaign service survives a SIGKILL'd worker and
answers warm resubmissions from the cache without forking.

Drill:

1. compute clean reference aggregates for two campaigns (no service);
2. submit both to one service — the plain campaign at ``--priority
   high``, plus a fault-injected campaign whose worker SIGKILLs itself
   mid-job on its first attempt;
3. serve to drain: the high-priority job must start first, the killed
   worker must be re-forked and resume its journal, and both results
   must be bit-identical to the clean references;
4. resubmit the plain campaign into a *fresh* service root sharing the
   result cache: it must complete warm — zero worker forks — and
   instantly (well under one worker's interpreter startup).

Usage (from the repository root)::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path


def clean_aggregates(spec, seeds) -> dict:
    from repro.runtime import run_campaign

    result = run_campaign(spec, seeds, jobs=1)
    return {
        name: {
            "samples": agg.samples, "mean": agg.mean,
            "stdev": agg.stdev, "minimum": agg.minimum,
            "maximum": agg.maximum,
        }
        for name, agg in result.aggregates.items()
    }


def result_payload(service, job_id: str) -> dict:
    return json.loads(service.result_path(job_id).read_text())


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--accesses", type=int, default=300)
    parser.add_argument(
        "--warm-budget-s", type=float, default=5.0,
        help="wall-clock ceiling for the warm resubmission",
    )
    args = parser.parse_args(argv)

    from repro.analysis.parallel import BenignReplicationSpec
    from repro.faults.crash import CrashingSpec
    from repro.runtime.service import CampaignService, ServiceConfig

    plain = BenignReplicationSpec(accesses=args.accesses, scale=8)
    plain_seeds = list(range(101, 101 + args.seeds))
    crash_seeds = list(range(201, 201 + args.seeds))
    config = ServiceConfig(
        max_inflight=1, poll_s=0.01,
        backoff_base_s=0.01, backoff_cap_s=0.05,
    )

    print("[1/4] clean reference aggregates...", flush=True)
    plain_reference = clean_aggregates(plain, plain_seeds)
    crash_reference = clean_aggregates(plain, crash_seeds)

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        # the injected fault: the worker SIGKILLs itself mid-job on the
        # first pass over this seed; the marker makes the retry clean
        crashing = CrashingSpec(
            spec=plain, crash_seeds=(crash_seeds[1],), mode="kill",
            marker_dir=str(Path(tmp) / "markers"),
        )

        print("[2/4] submit two jobs (one high-priority), serve "
              "through a worker SIGKILL...", flush=True)
        service = CampaignService(
            Path(tmp) / "svc", config=config, cache_dir=cache_dir,
        )
        high = service.submit(
            plain, plain_seeds, experiment="E13", priority="high",
        )
        killed = service.submit(
            crashing, crash_seeds, experiment="chaos",
        )
        if not (high.accepted and killed.accepted):
            return fail("admission rejected a smoke job")
        summary = service.serve(drain_and_exit=True)
        if summary["done"] != 2:
            return fail(f"expected 2 done jobs, got {summary['done']}")
        if summary["service.worker_forks"] != 3:
            return fail(
                "expected 3 worker forks (one per job + one re-fork "
                f"after SIGKILL), got {summary['service.worker_forks']}"
            )

        events = [
            json.loads(line)
            for line in (service.root / "service.telemetry")
            .read_text().splitlines()
        ]
        started = [e["job"] for e in events if e["kind"] == "job_started"]
        if started[0] != high.job_id:
            return fail("high-priority job did not start first")

        killed_payload = result_payload(service, killed.job_id)
        if killed_payload["resumed"] < 1:
            return fail("re-forked worker did not resume the journal")
        if result_payload(service, high.job_id)["aggregates"] \
                != plain_reference:
            return fail("high-priority job aggregates differ from clean")
        if killed_payload["aggregates"] != crash_reference:
            return fail("killed job aggregates differ from clean")
        print(f"      done=2 forks=3 resumed={killed_payload['resumed']}"
              f" — bit-identical", flush=True)

        print("[3/4] warm resubmission into a fresh service root...",
              flush=True)
        warm_root = Path(tmp) / "svc-warm"
        warm = CampaignService(
            warm_root, config=config, cache_dir=cache_dir,
        )
        resubmit = warm.submit(
            plain, plain_seeds, experiment="E13", priority="high",
        )
        if resubmit.job_id != high.job_id:
            return fail("resubmission fingerprinted to a different job")
        began = time.monotonic()
        warm_summary = warm.serve(drain_and_exit=True)
        elapsed = time.monotonic() - began

        print("[4/4] warm job forked nothing and matched...", flush=True)
        if warm_summary["service.worker_forks"] != 0:
            return fail(
                f"warm job forked {warm_summary['service.worker_forks']}"
                " workers; wanted 0"
            )
        if warm_summary["service.jobs_cached_warm"] != 1:
            return fail("warm job was not completed from the cache")
        if result_payload(warm, resubmit.job_id)["aggregates"] \
                != plain_reference:
            return fail("warm aggregates differ from clean")
        if elapsed > args.warm_budget_s:
            return fail(
                f"warm completion took {elapsed:.2f}s "
                f"> {args.warm_budget_s}s budget"
            )
        print(f"      cached_warm=1 forks=0 in {elapsed:.2f}s", flush=True)

    print("serve smoke OK: SIGKILL recovery bit-identical, warm "
          "resubmission served from cache without forking")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
