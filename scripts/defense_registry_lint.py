#!/usr/bin/env python
"""CI lint: the defense registry must be complete and unambiguous.

Every harness in the repo — the E1/E4/E5/E13 sweeps, the faults CLI,
the bulk-fallback smoke — derives its defense list from
``repro.defenses.ALL_DEFENSES``.  A plugin that is written but never
registered silently vanishes from *all* of them, so this lint walks
every module in the ``repro.defenses`` package and checks:

* every concrete ``Defense`` subclass (one that overrides the class-
  level ``name``) is listed in ``ALL_DEFENSES``;
* every concrete subclass is exported via ``repro.defenses.__all__``;
* registry ``name``s are unique (they key CLI flags, metrics groups,
  and cache entries);
* ``DEFENSE_BY_NAME`` is exactly the name->class mirror of
  ``ALL_DEFENSES``.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/defense_registry_lint.py
"""

from __future__ import annotations

import importlib
import pkgutil
import sys


def concrete_defense_classes():
    """Import every repro.defenses submodule and yield the concrete
    Defense subclasses it defines (public, with an overridden name)."""
    import repro.defenses as package
    from repro.defenses.base import Defense

    for info in pkgutil.iter_modules(package.__path__):
        importlib.import_module(f"repro.defenses.{info.name}")

    def walk(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from walk(sub)

    seen = set()
    for cls in walk(Defense):
        if cls in seen:
            continue
        seen.add(cls)
        if cls.__name__.startswith("_"):
            continue  # private shared bases (e.g. _PolicyDefense)
        if cls.name == Defense.name:
            continue  # abstract intermediary: never overrode `name`
        yield cls


def main() -> int:
    import repro.defenses as package
    from repro.defenses import ALL_DEFENSES
    from repro.defenses.registry import DEFENSE_BY_NAME

    failures = []
    concrete = sorted(concrete_defense_classes(), key=lambda c: c.__name__)
    registered = set(ALL_DEFENSES)
    exported = set(package.__all__)

    for cls in concrete:
        if cls not in registered:
            failures.append(
                f"{cls.__name__} (name={cls.name!r}) is not in ALL_DEFENSES"
            )
        if cls.__name__ not in exported:
            failures.append(
                f"{cls.__name__} is not exported in repro.defenses.__all__"
            )

    names = [cls.name for cls in ALL_DEFENSES]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        failures.append(f"duplicate registry names: {sorted(duplicates)}")

    mirror = {cls.name: cls for cls in ALL_DEFENSES}
    if DEFENSE_BY_NAME != mirror:
        failures.append("DEFENSE_BY_NAME does not mirror ALL_DEFENSES")

    print(
        f"defense registry lint: {len(concrete)} concrete classes, "
        f"{len(ALL_DEFENSES)} registered, {len(names)} names"
    )
    if failures:
        print("\ndefense registry lint FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("defense registry lint passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
