#!/usr/bin/env python
"""CI smoke: the columnar fast path must stay fast under every defense.

For each defense in the registry, drive one attack-shape iteration (a
double-sided hammer through ``run_rounds_columnar``) with the defense
attached — **with tracing and profiling enabled** — then inspect
``mc.columnar_fallbacks``:

* a defense that advertises ``supports_bulk_acts`` must cause **zero**
  fallbacks — if one appears, a code change silently knocked the bulk
  engine back onto the object path and the perf win is gone;
* a scalar-only defense (``supports_bulk_acts = False``) must be
  serviced entirely through the counted ordered fallback — if the
  count is zero, its strict per-ACT ordering guarantee was silently
  dropped;
* under **no** defense may ``mc.columnar_fallbacks.trace`` or
  ``mc.columnar_fallbacks.profiler`` be nonzero: observability rides
  the bulk path (columnar trace records, ``disturb_bulk`` profiler
  phases), so an attached sink or profiler demoting a batch means the
  vectorized tracing regressed to the old guard.

Defenses whose primitives the legacy platform lacks are reported as
skipped (that refusal is itself paper behavior, §4).

Total budget is a few seconds: 200 rounds per defense, serial.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/bulk_fallback_smoke.py
"""

from __future__ import annotations

import sys

ROUNDS = 200


def main() -> int:
    from repro.analysis.scenarios import build_scenario
    from repro.attacks import AttackPlanner, Attacker
    from repro.core.primitives import MissingPrimitiveError
    from repro.defenses import ALL_DEFENSES
    from repro.defenses.registry import build_overrides
    from repro.obs import CountingSink
    from repro.sim import legacy_platform, proposed_platform

    failures = []
    for defense_cls in ALL_DEFENSES:
        # The registry knows which allocator-policy build overrides
        # each defense demands — no hand-maintained map to go stale.
        overrides = build_overrides(defense_cls)
        scenario = None
        # Legacy hardware first; the paper's proposals need the proposed
        # platform's MC primitives.
        for platform in (legacy_platform, proposed_platform):
            defense = defense_cls()
            try:
                scenario = build_scenario(
                    platform(scale=8, **overrides),
                    defenses=[defense],
                    interleaved_allocation=not overrides,
                )
                break
            except MissingPrimitiveError as error:
                missing = error
        if scenario is None:
            print(
                f"  skip  {defense_cls.name:<22} missing primitive: {missing}"
            )
            continue
        system = scenario.system
        sink = CountingSink()
        system.obs.trace.set_sink(sink)
        system.enable_profiling()
        planner = AttackPlanner(system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        attacker = Attacker(system, scenario.attacker, plan)
        attacker.run_rounds_columnar(ROUNDS)
        snapshot = system.controller.stats.snapshot()
        fallbacks = system.controller.stats.columnar_fallbacks
        bulk = defense.supports_bulk_acts
        obs_demotions = (
            snapshot["columnar_fallbacks.trace"]
            + snapshot["columnar_fallbacks.profiler"]
        )
        if obs_demotions:
            failures.append(
                f"{defense_cls.name}: tracing/profiling demoted the bulk "
                f"path ({obs_demotions} observability fallbacks) — "
                f"columnar observability regressed to the old guard"
            )
            verdict = "FAIL"
        elif bulk and fallbacks:
            failures.append(
                f"{defense_cls.name}: advertises bulk-safe ACT hooks but "
                f"caused {fallbacks} columnar fallbacks"
            )
            verdict = "FAIL"
        elif not bulk and not fallbacks:
            failures.append(
                f"{defense_cls.name}: scalar-only defense was not routed "
                f"through the counted ordered fallback"
            )
            verdict = "FAIL"
        else:
            verdict = "ok"
        print(
            f"  {verdict:<5} {defense_cls.name:<22} "
            f"bulk={'yes' if bulk else 'no ':<3} fallbacks={fallbacks} "
            f"events={sink.events_written}"
        )
    if failures:
        print("\nbulk fallback smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbulk fallback smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
