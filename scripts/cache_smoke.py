#!/usr/bin/env python
"""CI smoke: the result cache must hit, and hits must change nothing.

Drill:

1. run a 4-seed ``replicate`` with a fresh ``--cache-dir`` (all misses);
2. run the identical command again — the second run must report every
   seed served from the cache and print byte-identical aggregate lines;
3. ``repro cache stats`` must show the expected entry count, and
   ``repro cache clear`` must empty it.

Total budget is a few seconds: E13 at a small scale, serial.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/cache_smoke.py
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path


def aggregate_lines(output: str) -> list:
    return [
        line for line in output.splitlines()
        if line.startswith("  ") and "95% CI" in line
    ]


def run_cli(args) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=600,
    )


def fail(message: str, *outputs: subprocess.CompletedProcess) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    for process in outputs:
        print(process.stdout, file=sys.stderr)
        print(process.stderr, file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--scale", type=int, default=8)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        cache_dir = str(Path(tmp) / "cache")
        replicate = [
            "replicate", "E13",
            "--seeds", str(args.seeds), "--scale", str(args.scale),
            "--jobs", "1", "--cache-dir", cache_dir,
        ]

        cold = run_cli(replicate)
        if cold.returncode != 0:
            return fail("cold replicate failed", cold)
        if "[cached:" in cold.stdout:
            return fail("cold run claims cache hits", cold)

        warm = run_cli(replicate)
        if warm.returncode != 0:
            return fail("warm replicate failed", warm)
        expected = f"[cached: {args.seeds} seeds from result cache]"
        if expected not in warm.stdout:
            return fail(f"warm run did not report {expected!r}", warm)
        if aggregate_lines(cold.stdout) != aggregate_lines(warm.stdout):
            return fail("cached aggregates diverge from cold run",
                        cold, warm)

        stats = run_cli(["cache", "stats", "--cache-dir", cache_dir])
        if stats.returncode != 0 or f"entries: {args.seeds}" not in stats.stdout:
            return fail(f"expected {args.seeds} cache entries", stats)

        clear = run_cli(["cache", "clear", "--cache-dir", cache_dir])
        if clear.returncode != 0 or f"cleared {args.seeds}" not in clear.stdout:
            return fail("cache clear did not remove the entries", clear)

    print(f"OK: {args.seeds} seeds cached, warm aggregates identical, "
          f"cache cleared")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
