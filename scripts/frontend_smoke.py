#!/usr/bin/env python
"""CI smoke: the columnar *front end* must stay columnar end to end.

Two representative shapes run through the vectorized generation +
translation + submit pipeline:

* **attack** — a double-sided hammer through
  ``Attacker.run_rounds_columnar`` (bulk front end, steady-state
  replication) on the undefended legacy platform;
* **streaming** — a ``streaming_write`` tenant through
  ``WorkloadRunner.run_columnar`` (bulk generation, chunked
  ``TranslationPlan``, whole-chunk ``submit_columnar_run``).

Both configs are bulk-capable (no scalar observers, no interrupt
handlers, no DMA, a vectorizable workload kind), so **every** fallback
counter must stay zero:

* any ``mc.columnar_fallbacks.<reason>`` moving means a code change
  silently demoted the engine back to the object path;
* ``gen.scalar_fallbacks`` moving means workload generation fell off
  the vector path.

A third leg runs ``pointer_chase`` — the one *designed* scalar-fallback
kind — and requires ``gen.scalar_fallbacks`` to move, proving the
counter is live (a dead counter would make the first two checks
vacuous).

Total budget is a couple of seconds.  Usage (from the repository
root)::

    PYTHONPATH=src python scripts/frontend_smoke.py
"""

from __future__ import annotations

import sys

ROUNDS = 400
ACCESSES = 5_000


def _fallbacks(system):
    snapshot = system.controller.stats.snapshot()
    reasons = {
        key: value for key, value in snapshot.items()
        if key.startswith("columnar_fallbacks.") and value
    }
    generation = int(
        system.obs.metrics.snapshot().get("gen.scalar_fallbacks", 0)
    )
    return reasons, generation


def main() -> int:
    from repro.analysis.scenarios import build_scenario
    from repro.attacks import AttackPlanner, Attacker
    from repro.sim import build_system, legacy_platform
    from repro.workloads import WorkloadRunner
    from repro.workloads.bulk import bulk_generation_available

    if not bulk_generation_available():
        # Without numpy the front end is scalar by design; nothing to
        # guard (and nothing to regress).
        print("frontend smoke skipped: numpy unavailable, scalar front end")
        return 0

    failures = []

    # -- attack shape -------------------------------------------------
    scenario = build_scenario(
        legacy_platform(scale=8), interleaved_allocation=True
    )
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    result = Attacker(system, scenario.attacker, plan).run_rounds_columnar(
        ROUNDS
    )
    reasons, generation = _fallbacks(system)
    if reasons:
        failures.append(f"attack: engine fallbacks {reasons}")
    if generation:
        failures.append(f"attack: gen.scalar_fallbacks = {generation}")
    print(
        f"  {'FAIL' if reasons or generation else 'ok  '} attack    "
        f"rounds={result.hammer_iterations} engine_fallbacks={reasons} "
        f"gen_fallbacks={generation}"
    )

    # -- streaming shape ----------------------------------------------
    system = build_system(legacy_platform(scale=8))
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(
        system, handle, name="streaming_write", mlp=8, seed=7
    )
    outcome = runner.run_columnar(ACCESSES)
    reasons, generation = _fallbacks(system)
    if reasons:
        failures.append(f"streaming: engine fallbacks {reasons}")
    if generation:
        failures.append(f"streaming: gen.scalar_fallbacks = {generation}")
    if system.controller.stats.requests != ACCESSES:
        failures.append(
            f"streaming: {system.controller.stats.requests} requests "
            f"serviced, expected {ACCESSES}"
        )
    print(
        f"  {'FAIL' if reasons or generation else 'ok  '} streaming "
        f"accesses={outcome.accesses} engine_fallbacks={reasons} "
        f"gen_fallbacks={generation}"
    )

    # -- counter liveness (pointer_chase must be counted) -------------
    system = build_system(legacy_platform(scale=8))
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(
        system, handle, name="pointer_chase", mlp=8, seed=7
    )
    runner.run_columnar(1_000)
    _, generation = _fallbacks(system)
    if generation < 1_000:
        failures.append(
            f"pointer_chase: gen.scalar_fallbacks = {generation}, expected "
            f">= 1000 — the fallback counter went dead"
        )
    print(
        f"  {'FAIL' if generation < 1_000 else 'ok  '} chase     "
        f"gen_fallbacks={generation} (designed fallback, must be counted)"
    )

    if failures:
        print("\nfrontend smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nfrontend smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
