#!/usr/bin/env python
"""CI smoke: SIGKILL a campaign partway, resume it, demand identity.

Drill:

1. run a clean campaign, record its aggregate lines;
2. start the same campaign with ``--journal``, SIGKILL it as soon as at
   least ``--min-records`` seeds are journaled;
3. ``python -m repro replicate --resume <journal>``;
4. fail unless the resumed aggregates are byte-identical to the clean
   run's.

If the campaign finishes before the kill lands, the resume degenerates
to a pure journal replay — which must *still* match, so the assertion
stands either way.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/kill_resume_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def aggregate_lines(output: str) -> list:
    return [
        line for line in output.splitlines()
        if line.startswith("  ") and "95% CI" in line
    ]


def run_cli(args, env) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=600,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=6)
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--min-records", type=int, default=2,
        help="journaled seeds to wait for before killing",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = (
        f"{src}:{env['PYTHONPATH']}" if env.get("PYTHONPATH") else src
    )
    base = [
        "replicate", "E13", "--seeds", str(args.seeds),
        "--scale", str(args.scale), "--jobs", str(args.jobs),
    ]

    print("[1/3] clean campaign...", flush=True)
    clean = run_cli(base, env)
    if clean.returncode != 0:
        print(clean.stderr, file=sys.stderr)
        return 1
    reference = aggregate_lines(clean.stdout)
    if not reference:
        print("no aggregate lines in clean output", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "campaign.jsonl"
        print("[2/3] campaign with journal, SIGKILL partway...",
              flush=True)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *base,
             "--journal", str(journal)],
            env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 540
        while time.monotonic() < deadline and process.poll() is None:
            if journal.exists() and \
                    len(journal.read_text().splitlines()) \
                    >= 1 + args.min_records:
                break
            time.sleep(0.02)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
            killed = True
        else:
            killed = False
        process.wait(timeout=60)
        records = max(0, len(journal.read_text().splitlines()) - 1) \
            if journal.exists() else 0
        print(f"      killed={killed} with {records}/{args.seeds} "
              f"seeds journaled", flush=True)

        print("[3/3] resume from journal...", flush=True)
        resumed = run_cli(["replicate", "--resume", str(journal)], env)
        if resumed.returncode != 0:
            print(resumed.stderr, file=sys.stderr)
            return 1
        if aggregate_lines(resumed.stdout) != reference:
            print("FAIL: resumed aggregates differ from the clean run",
                  file=sys.stderr)
            print("--- clean ---", *reference, sep="\n", file=sys.stderr)
            print("--- resumed ---", *aggregate_lines(resumed.stdout),
                  sep="\n", file=sys.stderr)
            return 1

    print("kill-and-resume smoke OK: resumed aggregates byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
